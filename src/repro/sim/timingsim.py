"""Floating-mode stabilization oracle.

This is the *per-pattern* ground truth for the SPCF algorithms: under the
floating-mode model, all primary inputs become valid at t = 0 and the output
of a gate stabilizes as soon as some prime implicant of its final value is
satisfied with every literal already stable (paper Sec. 3, Eqn. 1, applied
pointwise to one pattern instead of symbolically).

``stabilization_times(circuit, pattern)`` returns the exact stabilization
time of every net; a pattern belongs to the exact SPCF of output ``y`` at
threshold ``Delta_y`` iff ``times[y] > Delta_y``.  The SPCF algorithms are
validated against this oracle exhaustively on small circuits.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import SimulationError
from repro.netlist.circuit import Circuit
from repro.sim.logicsim import simulate


def stabilization_times(
    circuit: Circuit, pattern: Mapping[str, bool]
) -> dict[str, int]:
    """Exact floating-mode stabilization time of every net for ``pattern``."""
    values = simulate(circuit, pattern)
    times: dict[str, int] = {net: 0 for net in circuit.inputs}
    for name in circuit.topo_order():
        gate = circuit.gates[name]
        cell = gate.cell
        if not gate.fanins:
            times[name] = 0
            continue
        on_primes, off_primes = cell.primes()
        primes = on_primes if values[name] else off_primes
        delays = gate.pin_delays()
        pin_index = {pin: i for i, pin in enumerate(cell.inputs)}
        local = {
            pin: values[f] for pin, f in zip(cell.inputs, gate.fanins)
        }
        best: int | None = None
        for prime in primes:
            lits = prime.to_dict(cell.inputs)
            if any(local[pin] != pol for pin, pol in lits.items()):
                continue  # prime not satisfied by this pattern
            worst = 0
            for pin in lits:
                i = pin_index[pin]
                worst = max(worst, times[gate.fanins[i]] + delays[i])
            if best is None or worst < best:
                best = worst
        if best is None:
            raise SimulationError(
                f"no satisfied prime at gate {name!r} (inconsistent cell model)"
            )
        times[name] = best
    return times


def output_stabilization(
    circuit: Circuit, pattern: Mapping[str, bool]
) -> dict[str, int]:
    """Stabilization times restricted to the primary outputs."""
    times = stabilization_times(circuit, pattern)
    return {net: times[net] for net in circuit.outputs}


def is_speed_path_pattern(
    circuit: Circuit,
    pattern: Mapping[str, bool],
    output: str,
    target: int,
) -> bool:
    """True iff ``pattern`` activates a speed-path terminating at ``output``."""
    if output not in circuit.outputs:
        raise SimulationError(f"{output!r} is not a primary output")
    return stabilization_times(circuit, pattern)[output] > target

"""Floating-mode stabilization oracle.

This is the *per-pattern* ground truth for the SPCF algorithms: under the
floating-mode model, all primary inputs become valid at t = 0 and the output
of a gate stabilizes as soon as some prime implicant of its final value is
satisfied with every literal already stable (paper Sec. 3, Eqn. 1, applied
pointwise to one pattern instead of symbolically).

``stabilization_times(circuit, pattern)`` returns the exact stabilization
time of every net; a pattern belongs to the exact SPCF of output ``y`` at
threshold ``Delta_y`` iff ``times[y] > Delta_y``.  The SPCF algorithms are
validated against this oracle exhaustively on small circuits.
"""

from __future__ import annotations

from typing import Mapping

from repro.engine import CompiledCircuit, compile_circuit
from repro.errors import SimulationError
from repro.netlist.circuit import Circuit


def stabilization_times(
    circuit: Circuit | CompiledCircuit, pattern: Mapping[str, bool]
) -> dict[str, int]:
    """Exact floating-mode stabilization time of every net for ``pattern``.

    Runs on the compiled array IR: logic values come from one bit-parallel
    pass, then one walk over the topological gate arrays resolves each
    gate's earliest satisfied prime (index/polarity tables, precomputed per
    cell).  Accepts a plain or pre-compiled circuit.
    """
    compiled = compile_circuit(circuit)
    values = compiled.eval_pattern(pattern)
    times = [0] * compiled.n_nets
    n_inputs = compiled.n_inputs
    for pos, fanins in enumerate(compiled.gate_fanins):
        idx = n_inputs + pos
        if not fanins:
            continue
        delays = compiled.gate_delays[pos]
        on_primes, off_primes = compiled.gate_primes(pos)
        primes = on_primes if values[idx] else off_primes
        best: int | None = None
        for pins, pols in primes:
            worst = 0
            satisfied = True
            for p, want in zip(pins, pols):
                fanin = fanins[p]
                if values[fanin] != want:
                    satisfied = False
                    break
                t = times[fanin] + delays[p]
                if t > worst:
                    worst = t
            if satisfied and (best is None or worst < best):
                best = worst
        if best is None:
            raise SimulationError(
                f"no satisfied prime at gate {compiled.gate_names[pos]!r} "
                "(inconsistent cell model)"
            )
        times[idx] = best
    return dict(zip(compiled.net_names, times))


def output_stabilization(
    circuit: Circuit, pattern: Mapping[str, bool]
) -> dict[str, int]:
    """Stabilization times restricted to the primary outputs."""
    times = stabilization_times(circuit, pattern)
    return {net: times[net] for net in circuit.outputs}


def is_speed_path_pattern(
    circuit: Circuit,
    pattern: Mapping[str, bool],
    output: str,
    target: int,
) -> bool:
    """True iff ``pattern`` activates a speed-path terminating at ``output``."""
    if output not in circuit.outputs:
        raise SimulationError(f"{output!r} is not a primary output")
    return stabilization_times(circuit, pattern)[output] > target

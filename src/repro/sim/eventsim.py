"""Two-vector event-driven timing simulation (pure delay model).

Given an initial vector ``v1`` and a final vector ``v2`` applied at t = 0,
compute the full switching waveform of every net.  Under the pure
(non-inertial) delay model the output waveform of a gate is its function
applied to the input waveforms, each shifted by the corresponding pin-to-pin
delay — so waveforms can be built functionally in one topological pass
instead of with an event queue.

The masked-sampling model in :mod:`repro.sim.faults` samples these waveforms
at the clock edge; a *timing error* is a sampled value that differs from the
settled value.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.engine import CompiledCircuit, compile_circuit
from repro.errors import SimulationError
from repro.netlist.circuit import Circuit


@dataclass(frozen=True)
class Waveform:
    """A piecewise-constant 0/1 signal.

    ``initial`` is the value for ``t < transitions[0][0]``; ``transitions``
    is a strictly-increasing sequence of ``(time, new_value)`` with adjacent
    values always differing.
    """

    initial: bool
    transitions: tuple[tuple[int, bool], ...] = ()

    @staticmethod
    def constant(value: bool) -> "Waveform":
        return Waveform(bool(value))

    @staticmethod
    def step(initial: bool, final: bool, at: int = 0) -> "Waveform":
        """Input waveform: ``initial`` before ``at``, ``final`` after."""
        if initial == final:
            return Waveform(bool(initial))
        return Waveform(bool(initial), ((at, bool(final)),))

    def value_at(self, t: int) -> bool:
        """Signal value at time ``t`` (transitions take effect at their time)."""
        idx = bisect_right([tt for tt, _ in self.transitions], t)
        if idx == 0:
            return self.initial
        return self.transitions[idx - 1][1]

    @property
    def final(self) -> bool:
        """Settled value."""
        return self.transitions[-1][1] if self.transitions else self.initial

    @property
    def settle_time(self) -> int:
        """Time of the last transition (0 for constant waveforms)."""
        return self.transitions[-1][0] if self.transitions else 0

    @property
    def num_transitions(self) -> int:
        return len(self.transitions)

    def shifted(self, delay: int) -> "Waveform":
        """The waveform delayed by ``delay`` time units."""
        if delay == 0 or not self.transitions:
            return self if delay == 0 else Waveform(self.initial, self.transitions)
        return Waveform(
            self.initial, tuple((t + delay, v) for t, v in self.transitions)
        )


def _combine(cell_eval, waveforms: Sequence[Waveform]) -> Waveform:
    """Apply an n-ary function pointwise to already-shifted input waveforms."""
    times = sorted({t for w in waveforms for t, _ in w.transitions})
    initial = cell_eval([w.initial for w in waveforms])
    transitions: list[tuple[int, bool]] = []
    current = initial
    for t in times:
        value = cell_eval([w.value_at(t) for w in waveforms])
        if value != current:
            transitions.append((t, value))
            current = value
    return Waveform(initial, tuple(transitions))


def two_vector_waveforms(
    circuit: Circuit | CompiledCircuit,
    v1: Mapping[str, bool],
    v2: Mapping[str, bool],
) -> dict[str, Waveform]:
    """Waveform of every net when inputs switch from ``v1`` to ``v2`` at t=0.

    One pass over the compiled gate arrays (indices, cached scaled delays);
    accepts a plain or pre-compiled circuit.
    """
    compiled = compile_circuit(circuit)
    waves: list[Waveform] = []
    for net in compiled.inputs:
        try:
            waves.append(Waveform.step(bool(v1[net]), bool(v2[net])))
        except KeyError as exc:
            raise SimulationError(f"vector missing input {exc}") from exc
    for pos, fanins in enumerate(compiled.gate_fanins):
        cell = compiled.gate_cells[pos]
        if not fanins:
            waves.append(Waveform.constant(cell.evaluate({})))
            continue
        delays = compiled.gate_delays[pos]
        shifted = [waves[f].shifted(d) for f, d in zip(fanins, delays)]
        waves.append(_combine(cell.evaluate_seq, shifted))
    return dict(zip(compiled.net_names, waves))


def settle_times(
    circuit: Circuit | CompiledCircuit,
    v1: Mapping[str, bool],
    v2: Mapping[str, bool],
) -> dict[str, int]:
    """Last-transition time of every primary output for the vector pair."""
    compiled = compile_circuit(circuit)
    waves = two_vector_waveforms(compiled, v1, v2)
    return {net: waves[net].settle_time for net in compiled.outputs}

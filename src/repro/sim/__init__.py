"""Simulation: zero-delay, floating-mode oracle, event-driven, faults, aging."""

from repro.sim.aging import (
    AGING_MODELS,
    LinearAging,
    SaturatingAging,
    aged_compiled,
    aged_copy,
    aging_model,
    speed_path_gates,
)
from repro.sim.eventsim import Waveform, settle_times, two_vector_waveforms
from repro.sim.faults import (
    SampleResult,
    eval_with_faults,
    sample_at_clock,
    sample_many,
    timing_errors,
)
from repro.sim.logicsim import (
    exhaustive_patterns,
    pack_patterns,
    random_patterns,
    simulate,
    simulate_words,
)
from repro.sim.timingsim import (
    is_speed_path_pattern,
    output_stabilization,
    stabilization_times,
)

__all__ = [
    "simulate",
    "simulate_words",
    "exhaustive_patterns",
    "random_patterns",
    "pack_patterns",
    "stabilization_times",
    "output_stabilization",
    "is_speed_path_pattern",
    "Waveform",
    "two_vector_waveforms",
    "settle_times",
    "SampleResult",
    "sample_at_clock",
    "sample_many",
    "eval_with_faults",
    "timing_errors",
    "AGING_MODELS",
    "LinearAging",
    "SaturatingAging",
    "aged_copy",
    "aged_compiled",
    "aging_model",
    "speed_path_gates",
]

"""Zero-delay logic simulation.

Two evaluation modes:

* :func:`simulate` — one pattern, ``{net: bool}`` in and out.
* :func:`simulate_words` — bit-parallel simulation: every net carries a
  machine word holding one pattern per bit, so a whole random-vector batch
  costs one topological pass.

Both are thin adapters over :mod:`repro.engine`: the circuit is lowered once
to a :class:`~repro.engine.CompiledCircuit` (cached on the circuit) and
evaluated on flat integer-indexed arrays.  ``simulate_words`` dispatches to
the selected word backend — NumPy ``uint64`` lanes when NumPy is importable,
pure-Python big ints otherwise — with bit-identical results.

Pattern sources (:func:`exhaustive_patterns`, :func:`random_patterns`,
:func:`pack_patterns`) are shared by tests, the masking validator, and the
benchmark harnesses.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterable, Iterator, Mapping, Sequence

from repro.engine import compile_circuit, evaluate_words
from repro.errors import SimulationError
from repro.netlist.circuit import Circuit


def simulate(circuit: Circuit, pattern: Mapping[str, bool]) -> dict[str, bool]:
    """Evaluate every net of ``circuit`` under one input pattern."""
    compiled = compile_circuit(circuit)
    values = compiled.eval_pattern(pattern)
    return {net: bool(v) for net, v in zip(compiled.net_names, values)}


def simulate_words(
    circuit: Circuit,
    words: Mapping[str, int],
    width: int,
    backend: str | None = None,
) -> dict[str, int]:
    """Bit-parallel simulation of ``width`` patterns packed into ints.

    ``backend`` picks the word engine ("python" / "numpy"); the default
    follows :func:`repro.engine.select_backend` (NumPy when available).
    """
    return evaluate_words(circuit, words, width, backend=backend)


def exhaustive_patterns(inputs: Sequence[str]) -> Iterator[dict[str, bool]]:
    """All ``2^n`` input patterns; only sensible for small ``n``."""
    if len(inputs) > 24:
        raise SimulationError(
            f"refusing to enumerate 2^{len(inputs)} patterns exhaustively"
        )
    for bits in itertools.product((False, True), repeat=len(inputs)):
        yield dict(zip(inputs, bits))


def random_patterns(
    inputs: Sequence[str], count: int, seed: int = 0
) -> Iterator[dict[str, bool]]:
    """``count`` uniformly random input patterns (deterministic per seed)."""
    rng = random.Random(seed)
    for _ in range(count):
        yield {net: bool(rng.getrandbits(1)) for net in inputs}


def pack_patterns(
    inputs: Sequence[str], patterns: Iterable[Mapping[str, bool]]
) -> tuple[dict[str, int], int]:
    """Pack patterns into per-net words for :func:`simulate_words`.

    Returns ``(words, width)``; bit ``i`` of each word is pattern ``i``.
    """
    words = {net: 0 for net in inputs}
    width = 0
    for pattern in patterns:
        for net in inputs:
            if pattern[net]:
                words[net] |= 1 << width
        width += 1
    return words, width

"""Zero-delay logic simulation.

Two evaluation modes:

* :func:`simulate` — one pattern, ``{net: bool}`` in and out.
* :func:`simulate_words` — bit-parallel simulation: every net carries a
  machine word (arbitrary-precision int) holding one pattern per bit, so a
  whole random-vector batch costs one topological pass.

Pattern sources (:func:`exhaustive_patterns`, :func:`random_patterns`,
:func:`pack_patterns`) are shared by tests, the masking validator, and the
benchmark harnesses.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import SimulationError
from repro.logic.expr import BoolExpr
from repro.netlist.circuit import Circuit


def simulate(circuit: Circuit, pattern: Mapping[str, bool]) -> dict[str, bool]:
    """Evaluate every net of ``circuit`` under one input pattern."""
    values: dict[str, bool] = {}
    for net in circuit.inputs:
        try:
            values[net] = bool(pattern[net])
        except KeyError:
            raise SimulationError(f"pattern missing input {net!r}") from None
    for name in circuit.topo_order():
        gate = circuit.gates[name]
        values[name] = gate.cell.evaluate(
            {pin: values[f] for pin, f in zip(gate.cell.inputs, gate.fanins)}
        )
    return values


def _eval_words(expr: BoolExpr, words: Mapping[str, int], mask: int) -> int:
    if expr.op == "var":
        return words[expr.name]
    if expr.op == "const":
        return mask if expr.value else 0
    if expr.op == "not":
        return mask & ~_eval_words(expr.args[0], words, mask)
    vals = [_eval_words(a, words, mask) for a in expr.args]
    acc = vals[0]
    for v in vals[1:]:
        if expr.op == "and":
            acc &= v
        elif expr.op == "or":
            acc |= v
        else:
            acc ^= v
    return acc


def simulate_words(
    circuit: Circuit, words: Mapping[str, int], width: int
) -> dict[str, int]:
    """Bit-parallel simulation of ``width`` patterns packed into ints."""
    mask = (1 << width) - 1
    values: dict[str, int] = {}
    for net in circuit.inputs:
        try:
            values[net] = words[net] & mask
        except KeyError:
            raise SimulationError(f"word vector missing input {net!r}") from None
    for name in circuit.topo_order():
        gate = circuit.gates[name]
        local = {
            pin: values[f] for pin, f in zip(gate.cell.inputs, gate.fanins)
        }
        values[name] = _eval_words(gate.cell.expr, local, mask)
    return values


def exhaustive_patterns(inputs: Sequence[str]) -> Iterator[dict[str, bool]]:
    """All ``2^n`` input patterns; only sensible for small ``n``."""
    if len(inputs) > 24:
        raise SimulationError(
            f"refusing to enumerate 2^{len(inputs)} patterns exhaustively"
        )
    for bits in itertools.product((False, True), repeat=len(inputs)):
        yield dict(zip(inputs, bits))


def random_patterns(
    inputs: Sequence[str], count: int, seed: int = 0
) -> Iterator[dict[str, bool]]:
    """``count`` uniformly random input patterns (deterministic per seed)."""
    rng = random.Random(seed)
    for _ in range(count):
        yield {net: bool(rng.getrandbits(1)) for net in inputs}


def pack_patterns(
    inputs: Sequence[str], patterns: Iterable[Mapping[str, bool]]
) -> tuple[dict[str, int], int]:
    """Pack patterns into per-net words for :func:`simulate_words`.

    Returns ``(words, width)``; bit ``i`` of each word is pattern ``i``.
    """
    words = {net: 0 for net in inputs}
    width = 0
    for pattern in patterns:
        for net in inputs:
            if pattern[net]:
                words[net] |= 1 << width
        width += 1
    return words, width

"""Timing-error injection and clocked sampling.

A combinational stage is sampled at the clock edge ``clock``.  A *timing
error* at an output is a sampled value that differs from the settled value —
exactly what happens when a speed-path slows past the clock period due to
aging, voltage droop, or a marginal path.

:func:`sampled_outputs` and :func:`timing_errors` operate on the raw circuit;
the masked variants live in :mod:`repro.core.integrate`, which knows about
the prediction/indicator outputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.engine import CompiledCircuit, compile_circuit
from repro.errors import SimulationError
from repro.netlist.circuit import Circuit
from repro.sim.eventsim import two_vector_waveforms


@dataclass(frozen=True)
class SampleResult:
    """Outcome of sampling one vector pair at the clock edge."""

    sampled: dict[str, bool]
    settled: dict[str, bool]
    settle_time: dict[str, int]

    def errors(self) -> dict[str, bool]:
        """Per-output timing-error flags (sampled != settled)."""
        return {
            net: self.sampled[net] != self.settled[net] for net in self.sampled
        }

    @property
    def has_error(self) -> bool:
        return any(self.errors().values())


def sample_at_clock(
    circuit: Circuit | CompiledCircuit,
    v1: Mapping[str, bool],
    v2: Mapping[str, bool],
    clock: int,
) -> SampleResult:
    """Simulate the vector pair and sample all outputs at ``clock``."""
    if clock < 0:
        raise SimulationError(f"clock period {clock} must be non-negative")
    compiled = compile_circuit(circuit)
    waves = two_vector_waveforms(compiled, v1, v2)
    outputs = compiled.outputs
    sampled = {net: waves[net].value_at(clock) for net in outputs}
    settled = {net: waves[net].final for net in outputs}
    times = {net: waves[net].settle_time for net in outputs}
    return SampleResult(sampled=sampled, settled=settled, settle_time=times)


def sample_many(
    circuit: Circuit | CompiledCircuit,
    vector_pairs: Iterable[tuple[Mapping[str, bool], Mapping[str, bool]]],
    clock: int,
) -> Iterator[SampleResult]:
    """Sample a whole workload of vector pairs, compiling the circuit once.

    The Monte-Carlo injection harnesses iterate thousands of pairs; this
    amortizes the lowering and keeps the hot loop on the array IR.
    """
    compiled = compile_circuit(circuit)
    for v1, v2 in vector_pairs:
        yield sample_at_clock(compiled, v1, v2, clock)


def timing_errors(
    circuit: Circuit | CompiledCircuit,
    vector_pairs: Iterable[tuple[Mapping[str, bool], Mapping[str, bool]]],
    clock: int,
) -> list[tuple[int, dict[str, bool]]]:
    """Indices and per-output error flags for every erroneous vector pair."""
    failures = []
    for idx, result in enumerate(sample_many(circuit, vector_pairs, clock)):
        errs = result.errors()
        if any(errs.values()):
            failures.append((idx, errs))
    return failures

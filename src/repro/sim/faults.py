"""Timing-error injection and clocked sampling.

A combinational stage is sampled at the clock edge ``clock``.  A *timing
error* at an output is a sampled value that differs from the settled value —
exactly what happens when a speed-path slows past the clock period due to
aging, voltage droop, or a marginal path.

:func:`sampled_outputs` and :func:`timing_errors` operate on the raw circuit;
the masked variants live in :mod:`repro.core.integrate`, which knows about
the prediction/indicator outputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.errors import SimulationError
from repro.netlist.circuit import Circuit
from repro.sim.eventsim import two_vector_waveforms


@dataclass(frozen=True)
class SampleResult:
    """Outcome of sampling one vector pair at the clock edge."""

    sampled: dict[str, bool]
    settled: dict[str, bool]
    settle_time: dict[str, int]

    def errors(self) -> dict[str, bool]:
        """Per-output timing-error flags (sampled != settled)."""
        return {
            net: self.sampled[net] != self.settled[net] for net in self.sampled
        }

    @property
    def has_error(self) -> bool:
        return any(self.errors().values())


def sample_at_clock(
    circuit: Circuit,
    v1: Mapping[str, bool],
    v2: Mapping[str, bool],
    clock: int,
) -> SampleResult:
    """Simulate the vector pair and sample all outputs at ``clock``."""
    if clock < 0:
        raise SimulationError(f"clock period {clock} must be non-negative")
    waves = two_vector_waveforms(circuit, v1, v2)
    sampled = {net: waves[net].value_at(clock) for net in circuit.outputs}
    settled = {net: waves[net].final for net in circuit.outputs}
    times = {net: waves[net].settle_time for net in circuit.outputs}
    return SampleResult(sampled=sampled, settled=settled, settle_time=times)


def timing_errors(
    circuit: Circuit,
    vector_pairs: Iterable[tuple[Mapping[str, bool], Mapping[str, bool]]],
    clock: int,
) -> list[tuple[int, dict[str, bool]]]:
    """Indices and per-output error flags for every erroneous vector pair."""
    failures = []
    for idx, (v1, v2) in enumerate(vector_pairs):
        result = sample_at_clock(circuit, v1, v2, clock)
        errs = result.errors()
        if any(errs.values()):
            failures.append((idx, errs))
    return failures

"""Timing-error injection and clocked sampling.

A combinational stage is sampled at the clock edge ``clock``.  A *timing
error* at an output is a sampled value that differs from the settled value —
exactly what happens when a speed-path slows past the clock period due to
aging, voltage droop, or a marginal path.

:func:`sampled_outputs` and :func:`timing_errors` operate on the raw circuit;
the masked variants live in :mod:`repro.core.integrate`, which knows about
the prediction/indicator outputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping

from repro.engine import CompiledCircuit, compile_circuit
from repro.errors import SimulationError
from repro.netlist.circuit import Circuit
from repro.sim.eventsim import two_vector_waveforms


@dataclass(frozen=True)
class SampleResult:
    """Outcome of sampling one vector pair at the clock edge."""

    sampled: dict[str, bool]
    settled: dict[str, bool]
    settle_time: dict[str, int]

    def errors(self) -> dict[str, bool]:
        """Per-output timing-error flags (sampled != settled)."""
        return {
            net: self.sampled[net] != self.settled[net] for net in self.sampled
        }

    @property
    def has_error(self) -> bool:
        return any(self.errors().values())


def sample_at_clock(
    circuit: Circuit | CompiledCircuit,
    v1: Mapping[str, bool],
    v2: Mapping[str, bool],
    clock: int,
) -> SampleResult:
    """Simulate the vector pair and sample all outputs at ``clock``."""
    if clock < 0:
        raise SimulationError(f"clock period {clock} must be non-negative")
    compiled = compile_circuit(circuit)
    waves = two_vector_waveforms(compiled, v1, v2)
    outputs = compiled.outputs
    sampled = {net: waves[net].value_at(clock) for net in outputs}
    settled = {net: waves[net].final for net in outputs}
    times = {net: waves[net].settle_time for net in outputs}
    return SampleResult(sampled=sampled, settled=settled, settle_time=times)


def sample_many(
    circuit: Circuit | CompiledCircuit,
    vector_pairs: Iterable[tuple[Mapping[str, bool], Mapping[str, bool]]],
    clock: int,
) -> Iterator[SampleResult]:
    """Sample a whole workload of vector pairs, compiling the circuit once.

    The Monte-Carlo injection harnesses iterate thousands of pairs; this
    amortizes the lowering and keeps the hot loop on the array IR.

    Empty workloads are legal and yield nothing — but the clock is still
    validated up front, so a bad period is reported even when the batch
    (e.g. an ``n=0`` campaign shard) contains no vector pairs.
    """
    if clock < 0:
        raise SimulationError(f"clock period {clock} must be non-negative")
    compiled = compile_circuit(circuit)

    def _generate() -> Iterator[SampleResult]:
        for v1, v2 in vector_pairs:
            yield sample_at_clock(compiled, v1, v2, clock)

    return _generate()


def eval_with_faults(
    circuit: Circuit | CompiledCircuit,
    pattern: Mapping[str, bool],
    flips: Iterable[str] = (),
    stuck: Mapping[str, bool] | None = None,
) -> dict[str, bool]:
    """Zero-delay evaluation with injected net faults, all nets out.

    ``flips`` are transient single-event upsets: the named nets are inverted
    *after* their driver evaluates, and the upset propagates through the
    fanout cone.  ``stuck`` pins nets at a constant (stuck-at faults).  A net
    that is both flipped and stuck ends up at the inverted stuck value —
    the flip is applied last, matching a particle strike on a tied node.

    The fault-injection campaign uses this for its SEU and stuck-at modes;
    errors are deviations of the primary outputs from the fault-free run.
    """
    compiled = compile_circuit(circuit)
    index = compiled.net_index
    overrides: dict[int, tuple[bool, int]] = {}

    def _idx(net: str) -> int:
        try:
            return index[net]
        except KeyError:
            raise SimulationError(
                f"cannot inject fault on unknown net {net!r}"
            ) from None

    for net, value in (stuck or {}).items():
        overrides[_idx(net)] = (True, 1 if value else 0)
    for net in flips:
        i = _idx(net)
        pinned, value = overrides.get(i, (False, 0))
        overrides[i] = (pinned, value ^ 1) if pinned else (False, 1)

    def _apply(i: int, value: int) -> int:
        pinned, override = overrides.get(i, (False, 0))
        if pinned:
            return override
        # A bare flip entry stores the xor mask in ``override``.
        return value ^ override if i in overrides else value

    values = [0] * compiled.n_nets
    for i, net in enumerate(compiled.inputs):
        try:
            values[i] = _apply(i, 1 if pattern[net] else 0)
        except KeyError:
            raise SimulationError(f"pattern missing input {net!r}") from None
    for func, out, fanins in compiled.plan:
        values[out] = _apply(out, func(1, *[values[f] for f in fanins]))
    return {net: bool(v) for net, v in zip(compiled.net_names, values)}


def timing_errors(
    circuit: Circuit | CompiledCircuit,
    vector_pairs: Iterable[tuple[Mapping[str, bool], Mapping[str, bool]]],
    clock: int,
) -> list[tuple[int, dict[str, bool]]]:
    """Indices and per-output error flags for every erroneous vector pair."""
    failures = []
    for idx, result in enumerate(sample_many(circuit, vector_pairs, clock)):
        errs = result.errors()
        if any(errs.values()):
            failures.append((idx, errs))
    return failures

"""Aging and wearout delay-degradation models.

The paper motivates error masking with gradual speed-path slowdown (NBTI,
HCI, electromigration).  We model aging as a multiplicative delay-scale
factor applied to a chosen set of gates; :class:`LinearAging` maps elapsed
stress time to a scale factor, and :func:`aged_copy` materializes a slowed
circuit for simulation/STA.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.engine import CompiledCircuit, compile_circuit
from repro.errors import SimulationError
from repro.netlist.circuit import Circuit
from repro.sta.timing import TimingReport, analyze


@dataclass(frozen=True)
class LinearAging:
    """Delay scale grows linearly with stress time: ``1 + rate * t``."""

    rate: float

    def scale_at(self, t: float) -> float:
        if t < 0:
            raise SimulationError("stress time must be non-negative")
        return 1.0 + self.rate * t


@dataclass(frozen=True)
class SaturatingAging:
    """NBTI-style saturating degradation: ``1 + amplitude * (1 - exp(-t/tau))``.

    Implemented with the rational approximation ``t / (t + tau)`` to stay
    dependency-free; it has the same saturating shape.
    """

    amplitude: float
    tau: float

    def scale_at(self, t: float) -> float:
        if t < 0:
            raise SimulationError("stress time must be non-negative")
        return 1.0 + self.amplitude * (t / (t + self.tau))


#: Aging models constructible from a JSON-serializable campaign spec.
AGING_MODELS = {
    "linear": LinearAging,
    "saturating": SaturatingAging,
}


def aging_model(kind: str, **params: float) -> LinearAging | SaturatingAging:
    """Instantiate a named aging model (campaign specs carry name + params)."""
    try:
        cls = AGING_MODELS[kind]
    except KeyError:
        raise SimulationError(
            f"unknown aging model {kind!r}; choose from {tuple(AGING_MODELS)}"
        ) from None
    try:
        return cls(**params)
    except TypeError as exc:
        raise SimulationError(
            f"bad parameters for aging model {kind!r}: {exc}"
        ) from None


def speed_path_gates(
    circuit: Circuit, threshold: float = 0.9, report: TimingReport | None = None
) -> set[str]:
    """Gates lying on at least one speed-path (negative slack w.r.t. target)."""
    if report is None:
        report = analyze(circuit, threshold=threshold)
    return report.critical_gates(circuit)


def aged_copy(
    circuit: Circuit,
    scale: float,
    gates: Iterable[str] | None = None,
    threshold: float = 0.9,
) -> Circuit:
    """A copy of ``circuit`` with the chosen gates slowed by ``scale``.

    When ``gates`` is ``None``, all speed-path gates are aged — the paper's
    wearout scenario, where the paths that are already slow degrade past the
    clock period first.
    """
    if scale < 1.0:
        raise SimulationError(f"aging scale {scale} < 1 would speed gates up")
    if gates is None:
        gates = speed_path_gates(circuit, threshold=threshold)
    return circuit.with_delay_scales({g: scale for g in gates})


def aged_compiled(
    circuit: Circuit | CompiledCircuit,
    scale: float,
    gates: Iterable[str] | None = None,
    threshold: float = 0.9,
) -> CompiledCircuit:
    """Compiled counterpart of :func:`aged_copy` for Monte-Carlo sweeps.

    Rebuilds only the flat delay arrays of the compiled IR — the lowering
    (opcode programs, fanin indices, levels) is shared — so wearout loops
    that age the same circuit at many stress times never re-lower it.
    """
    if scale < 1.0:
        raise SimulationError(f"aging scale {scale} < 1 would speed gates up")
    compiled = compile_circuit(circuit)
    if gates is None:
        gates = analyze(compiled, threshold=threshold).critical_nets() & set(
            compiled.gate_names
        )
    return compiled.with_delay_scales({g: scale for g in gates})

"""Light-weight two-level minimization (espresso-style passes).

The full ESPRESSO loop is unnecessary at our scale; we provide the two passes
the pipeline relies on:

* :func:`single_cube_containment` — drop cubes covered by another single cube.
* :func:`irredundant` — drop cubes whose minterms are covered by the rest of
  the cover (checked exactly with BDDs), keeping the incompletely-specified
  lower bound covered.
* :func:`expand` — grow each cube against an upper bound (on-set ∪ DC set),
  removing literals while containment holds.
"""

from __future__ import annotations

from repro.bdd.manager import BddManager, Function, cube_function
from repro.logic.cover import Cover
from repro.logic.cube import Cube


def single_cube_containment(cover: Cover) -> Cover:
    """Remove cubes contained in another single cube of the cover."""
    kept: list[Cube] = []
    cubes = sorted(cover.cubes, key=lambda c: (c.literal_count(), c.values))
    for c in cubes:
        if not any(k.covers(c) for k in kept):
            kept.append(c)
    return Cover(cover.names, tuple(kept))


def _cube_fn(mgr: BddManager, cover: Cover, cube: Cube) -> Function:
    return cube_function(mgr, cube.to_dict(cover.names))


def irredundant(cover: Cover, lower: Function | None = None) -> Cover:
    """Remove redundant cubes.

    A cube is redundant when removing it still leaves ``lower`` (by default,
    the cover's own function) covered.  Greedy, biggest cubes kept first.
    """
    mgr = BddManager(cover.names)
    full = cover.to_function(mgr)
    target = full if lower is None else lower
    # Try to drop cubes with many literals first (they cover the least).
    order = sorted(
        range(len(cover.cubes)),
        key=lambda i: (-cover.cubes[i].literal_count(), cover.cubes[i].values),
    )
    current = list(cover.cubes)
    for idx in order:
        if len(current) <= 1:
            break
        candidate = [c for c in current if c is not cover.cubes[idx]]
        if len(candidate) == len(current):
            continue
        rest = Cover(cover.names, tuple(candidate)).to_function(mgr)
        if target.is_subset_of(rest):
            current = candidate
    return Cover(cover.names, tuple(current))


def expand(cover: Cover, upper: Function, mgr: BddManager) -> Cover:
    """Expand each cube (drop literals) while staying inside ``upper``.

    ``mgr`` must have all of ``cover.names`` registered; ``upper`` is a
    function in that manager bounding the expansion (on-set ∪ don't-cares).
    """
    new_cubes: list[Cube] = []
    for cube in cover.cubes:
        current = cube
        for pos in sorted(
            range(cube.width), key=lambda p: cube.values[p], reverse=True
        ):
            if current.values[pos] == 2:  # DASH
                continue
            trial = current.expand_position(pos)
            fn = cube_function(mgr, trial.to_dict(cover.names))
            if fn.is_subset_of(upper):
                current = trial
        new_cubes.append(current)
    return single_cube_containment(Cover(cover.names, tuple(new_cubes)))


def minimize(cover: Cover) -> Cover:
    """Convenience pipeline: single-cube containment then irredundant."""
    return irredundant(single_cube_containment(cover))

"""Two-level logic: expressions, cubes, covers, Quine–McCluskey, minimize."""

from repro.logic.cover import Cover
from repro.logic.cube import DASH, ONE, ZERO, Cube, merge_adjacent
from repro.logic.expr import BoolExpr, parse_expr
from repro.logic.factoring import factor, literal_kernels, weak_divide
from repro.logic.minimize import (
    expand,
    irredundant,
    minimize,
    single_cube_containment,
)
from repro.logic.qm import minimal_cover, prime_implicants, primes_of_truth_table

__all__ = [
    "BoolExpr",
    "parse_expr",
    "Cube",
    "Cover",
    "ZERO",
    "ONE",
    "DASH",
    "merge_adjacent",
    "factor",
    "literal_kernels",
    "weak_divide",
    "prime_implicants",
    "primes_of_truth_table",
    "minimal_cover",
    "single_cube_containment",
    "irredundant",
    "expand",
    "minimize",
]

"""Algebraic factoring of SOP covers.

The masking circuit must be *fast* — the paper requires >= 20% slack over the
original circuit — so the selected covers are not mapped as flat AND-OR
trees but factored first.  This module implements classic algebraic
(kernel-based) factoring:

* :func:`weak_divide` — algebraic division of a cover by a divisor cover,
* :func:`literal_kernels` — level-0 kernels obtained as the cube-free parts
  of single-literal quotients,
* :func:`factor` — recursive factoring: pick the kernel (or literal) divisor
  with the best literal savings, divide, and recurse on quotient, divisor,
  and remainder, producing a :class:`~repro.logic.expr.BoolExpr` tree.

Example: ``a&c | a&d | b&c | b&d`` factors into ``(a|b) & (c|d)``, halving
the literal count and the mapped depth.
"""

from __future__ import annotations

from collections import Counter

from repro.logic.cover import Cover
from repro.logic.cube import DASH, Cube
from repro.logic.expr import BoolExpr


def _cube_expr(cube: Cube, names: tuple[str, ...]) -> BoolExpr:
    lits = [
        BoolExpr.var(names[i]) if v == 1 else ~BoolExpr.var(names[i])
        for i, v in enumerate(cube.values)
        if v != DASH
    ]
    if not lits:
        return BoolExpr.const(True)
    acc = lits[0]
    for l in lits[1:]:
        acc = acc & l
    return acc


def cube_quotient(cube: Cube, divisor: Cube) -> Cube | None:
    """``cube / divisor`` for single cubes: ``None`` unless divisor ⊆ cube."""
    out = []
    for cv, dv in zip(cube.values, divisor.values):
        if dv == DASH:
            out.append(cv)
        elif cv == dv:
            out.append(DASH)
        else:
            return None
    return Cube(tuple(out))


def weak_divide(cover: Cover, divisor: Cover) -> tuple[Cover, Cover]:
    """Algebraic division ``cover = divisor * quotient + remainder``.

    The quotient is the intersection, over divisor cubes, of the per-cube
    quotients; the remainder is whatever the product fails to reproduce.
    """
    quotient_sets: list[dict[tuple[int, ...], Cube]] = []
    for d in divisor.cubes:
        qs: dict[tuple[int, ...], Cube] = {}
        for c in cover.cubes:
            q = cube_quotient(c, d)
            if q is not None:
                qs[q.values] = q
        quotient_sets.append(qs)
    if not quotient_sets:
        return Cover(cover.names, ()), cover
    common = set(quotient_sets[0])
    for qs in quotient_sets[1:]:
        common &= set(qs)
    quotient = Cover(
        cover.names, tuple(sorted((quotient_sets[0][v] for v in common),
                                  key=lambda c: c.values))
    )
    # remainder = cover - divisor*quotient
    product: set[tuple[int, ...]] = set()
    for d in divisor.cubes:
        for q in quotient.cubes:
            merged = d.intersect(q)
            if merged is not None:
                product.add(merged.values)
    remainder = Cover(
        cover.names,
        tuple(c for c in cover.cubes if c.values not in product),
    )
    return quotient, remainder


def _literal_counts(cover: Cover) -> Counter:
    counts: Counter = Counter()
    for cube in cover.cubes:
        for pos, pol in cube.literals().items():
            counts[(pos, pol)] += 1
    return counts


def _make_cube_free(cover: Cover) -> Cover:
    """Divide out the largest common cube of all cubes."""
    if not cover.cubes:
        return cover
    common = list(cover.cubes[0].values)
    for cube in cover.cubes[1:]:
        for i, v in enumerate(cube.values):
            if common[i] != v:
                common[i] = DASH
    if all(v == DASH for v in common):
        return cover
    divisor = Cube(tuple(common))
    cubes = []
    for cube in cover.cubes:
        q = cube_quotient(cube, divisor)
        cubes.append(q if q is not None else cube)
    return Cover(cover.names, tuple(cubes))


def literal_kernels(cover: Cover) -> list[Cover]:
    """Level-0 kernel candidates: cube-free single-literal quotients."""
    kernels: list[Cover] = []
    seen: set[tuple[tuple[int, ...], ...]] = set()
    for (pos, pol), count in _literal_counts(cover).items():
        if count < 2:
            continue
        divisor = Cube.from_literals({pos: pol}, len(cover.names))
        quotient_cubes = []
        for cube in cover.cubes:
            q = cube_quotient(cube, divisor)
            if q is not None:
                quotient_cubes.append(q)
        kernel = _make_cube_free(Cover(cover.names, tuple(quotient_cubes)))
        key = tuple(sorted(c.values for c in kernel.cubes))
        if len(kernel.cubes) >= 2 and key not in seen:
            seen.add(key)
            kernels.append(kernel)
    return kernels


def factor(cover: Cover) -> BoolExpr:
    """Factored-form expression of the cover (algebraically equivalent)."""
    if not cover.cubes:
        return BoolExpr.const(False)
    if len(cover.cubes) == 1:
        return _cube_expr(cover.cubes[0], cover.names)

    best: tuple[int, Cover] | None = None
    for kernel in literal_kernels(cover):
        quotient, remainder = weak_divide(cover, kernel)
        if not quotient.cubes:
            continue
        saved = (len(kernel.cubes) - 1) * (len(quotient.cubes) - 1)
        if saved > 0 and (best is None or saved > best[0]):
            best = (saved, kernel)

    if best is not None:
        kernel = best[1]
        quotient, remainder = weak_divide(cover, kernel)
        expr = factor(kernel) & factor(quotient)
        if remainder.cubes:
            expr = expr | factor(remainder)
        return expr

    # No multi-cube kernel pays off: divide by the most frequent literal.
    counts = _literal_counts(cover)
    (pos, pol), count = counts.most_common(1)[0]
    if count < 2:
        # Completely disjoint cubes: plain OR of cube expressions.
        acc = _cube_expr(cover.cubes[0], cover.names)
        for cube in cover.cubes[1:]:
            acc = acc | _cube_expr(cube, cover.names)
        return acc
    divisor_cube = Cube.from_literals({pos: pol}, len(cover.names))
    quotient_cubes = []
    remainder_cubes = []
    for cube in cover.cubes:
        q = cube_quotient(cube, divisor_cube)
        if q is not None:
            quotient_cubes.append(q)
        else:
            remainder_cubes.append(cube)
    lit = BoolExpr.var(cover.names[pos])
    if not pol:
        lit = ~lit
    expr = lit & factor(Cover(cover.names, tuple(quotient_cubes)))
    if remainder_cubes:
        expr = expr | factor(Cover(cover.names, tuple(remainder_cubes)))
    return expr

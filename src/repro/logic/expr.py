"""A small Boolean expression language.

Cell functions in the library and hand-written benchmark circuits are
specified as expression strings, e.g. ``"(a & ~b) | (c ^ d)"``.  The grammar,
in decreasing binding strength:

.. code-block:: text

    primary :=  NAME | "0" | "1" | "(" expr ")"
    unary   :=  ("~" | "!") unary | primary ("'")*
    and_    :=  unary (("&" | "*") unary)*
    xor_    :=  and_ ("^" and_)*
    expr    :=  xor_ (("|" | "+") xor_)*

The postfix ``'`` complement matches the paper's notation (``a1'``).
Parsed expressions evaluate over ``{name: bool}`` assignments and convert to
BDDs via :meth:`BoolExpr.to_function`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Mapping

from repro.bdd.manager import BddManager, Function
from repro.errors import ExprSyntaxError

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<name>[A-Za-z_][A-Za-z_0-9\.\[\]]*)"
    r"|(?P<const>[01])"
    r"|(?P<op>[~!&*^|+()'])"
    r"|(?P<bad>.))"
)


@dataclass(frozen=True)
class BoolExpr:
    """An immutable Boolean expression AST node.

    ``op`` is one of ``"var"``, ``"const"``, ``"not"``, ``"and"``, ``"or"``,
    ``"xor"``.  Leaves carry ``name`` (variables) or ``value`` (constants);
    internal nodes carry ``args``.
    """

    op: str
    name: str = ""
    value: bool = False
    args: tuple["BoolExpr", ...] = ()

    # --------------------------------------------------------------- queries

    def variables(self) -> set[str]:
        """Set of variable names appearing in the expression."""
        if self.op == "var":
            return {self.name}
        out: set[str] = set()
        for a in self.args:
            out |= a.variables()
        return out

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        """Evaluate under a total assignment of the variables used."""
        if self.op == "var":
            try:
                return bool(assignment[self.name])
            except KeyError:
                raise ExprSyntaxError(
                    f"assignment missing variable {self.name!r}"
                ) from None
        if self.op == "const":
            return self.value
        if self.op == "not":
            return not self.args[0].evaluate(assignment)
        vals = [a.evaluate(assignment) for a in self.args]
        if self.op == "and":
            return all(vals)
        if self.op == "or":
            return any(vals)
        if self.op == "xor":
            acc = False
            for v in vals:
                acc ^= v
            return acc
        raise ExprSyntaxError(f"unknown operator {self.op!r}")

    def to_function(
        self, mgr: BddManager, rename: Mapping[str, str] | None = None
    ) -> Function:
        """Build the BDD of this expression in ``mgr``.

        ``rename`` optionally maps expression variable names to manager
        variable names (used to instantiate a cell function on actual nets).
        """
        if self.op == "var":
            name = rename[self.name] if rename else self.name
            return mgr.var(name)
        if self.op == "const":
            return mgr.true if self.value else mgr.false
        if self.op == "not":
            return ~self.args[0].to_function(mgr, rename)
        fns = [a.to_function(mgr, rename) for a in self.args]
        acc = fns[0]
        for f in fns[1:]:
            if self.op == "and":
                acc = acc & f
            elif self.op == "or":
                acc = acc | f
            else:
                acc = acc ^ f
        return acc

    # ----------------------------------------------------------- constructors

    @staticmethod
    def var(name: str) -> "BoolExpr":
        return BoolExpr("var", name=name)

    @staticmethod
    def const(value: bool) -> "BoolExpr":
        return BoolExpr("const", value=value)

    def __invert__(self) -> "BoolExpr":
        return BoolExpr("not", args=(self,))

    def __and__(self, other: "BoolExpr") -> "BoolExpr":
        return BoolExpr("and", args=(self, other))

    def __or__(self, other: "BoolExpr") -> "BoolExpr":
        return BoolExpr("or", args=(self, other))

    def __xor__(self, other: "BoolExpr") -> "BoolExpr":
        return BoolExpr("xor", args=(self, other))

    def __str__(self) -> str:
        if self.op == "var":
            return self.name
        if self.op == "const":
            return "1" if self.value else "0"
        if self.op == "not":
            return f"~{_paren(self.args[0])}"
        sep = {"and": " & ", "or": " | ", "xor": " ^ "}[self.op]
        return sep.join(_paren(a) for a in self.args)


def _paren(e: BoolExpr) -> str:
    if e.op in ("var", "const", "not"):
        return str(e)
    return f"({e})"


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens: list[str] = []
        for m in _TOKEN_RE.finditer(text):
            if m.lastgroup == "bad":
                raise ExprSyntaxError(
                    f"unexpected character {m.group()!r} in {text!r}"
                )
            self.tokens.append(m.group().strip())
        self.pos = 0

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self) -> str:
        tok = self.peek()
        if tok is None:
            raise ExprSyntaxError(f"unexpected end of expression in {self.text!r}")
        self.pos += 1
        return tok

    def parse(self) -> BoolExpr:
        e = self.expr()
        if self.peek() is not None:
            raise ExprSyntaxError(
                f"trailing tokens {self.tokens[self.pos:]} in {self.text!r}"
            )
        return e

    def expr(self) -> BoolExpr:
        e = self.xor_()
        while self.peek() in ("|", "+"):
            self.take()
            e = e | self.xor_()
        return e

    def xor_(self) -> BoolExpr:
        e = self.and_()
        while self.peek() == "^":
            self.take()
            e = e ^ self.and_()
        return e

    def and_(self) -> BoolExpr:
        e = self.unary()
        while self.peek() in ("&", "*"):
            self.take()
            e = e & self.unary()
        return e

    def unary(self) -> BoolExpr:
        tok = self.peek()
        if tok in ("~", "!"):
            self.take()
            return ~self.unary()
        e = self.primary()
        while self.peek() == "'":
            self.take()
            e = ~e
        return e

    def primary(self) -> BoolExpr:
        tok = self.take()
        if tok == "(":
            e = self.expr()
            closing = self.take()
            if closing != ")":
                raise ExprSyntaxError(f"expected ')' got {closing!r} in {self.text!r}")
            return e
        if tok in ("0", "1"):
            return BoolExpr.const(tok == "1")
        if re.fullmatch(r"[A-Za-z_][A-Za-z_0-9\.\[\]]*", tok):
            return BoolExpr.var(tok)
        raise ExprSyntaxError(f"unexpected token {tok!r} in {self.text!r}")


def parse_expr(text: str) -> BoolExpr:
    """Parse a Boolean expression string into a :class:`BoolExpr`."""
    return _Parser(text).parse()

"""Quine–McCluskey prime-implicant generation.

Library cells have few inputs (≤ 8 in our libraries), so the classic
tabulation method is exact and fast.  The SPCF recursion (paper Eqn. 1) needs
*all* prime implicants of both the on-set and the off-set of every cell
function; :func:`primes_of_truth_table` provides them and the results are
cached per cell type by :mod:`repro.netlist.cell`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import LogicError
from repro.logic.cube import Cube, merge_adjacent


def prime_implicants(
    minterms: Iterable[int], width: int, dont_cares: Iterable[int] = ()
) -> list[Cube]:
    """All prime implicants of the function with the given on-set.

    ``dont_cares`` may be used to enlarge primes; primes that cover only
    don't-cares are still returned (callers covering the on-set should run a
    cover selection afterwards — for SPCF purposes all primes are wanted).
    """
    on = set(minterms)
    dc = set(dont_cares)
    if any(m >= (1 << width) or m < 0 for m in on | dc):
        raise LogicError("minterm out of range")
    current = {Cube.from_minterm(m, width) for m in on | dc}
    primes: list[Cube] = []
    while current:
        merged: set[Cube] = set()
        used: set[Cube] = set()
        cubes = sorted(current, key=lambda c: (c.values,))
        # Group by number of positive literals to limit pair tests.
        by_ones: dict[int, list[Cube]] = {}
        for c in cubes:
            by_ones.setdefault(sum(1 for v in c.values if v == 1), []).append(c)
        for ones, group in sorted(by_ones.items()):
            for other in by_ones.get(ones + 1, ()):
                for c in group:
                    m = merge_adjacent(c, other)
                    if m is not None:
                        merged.add(m)
                        used.add(c)
                        used.add(other)
        for c in cubes:
            if c not in used:
                primes.append(c)
        current = merged
    # Deduplicate while preserving deterministic order.
    seen: set[tuple[int, ...]] = set()
    out: list[Cube] = []
    for c in sorted(primes, key=lambda c: (c.literal_count(), c.values)):
        if c.values not in seen:
            seen.add(c.values)
            out.append(c)
    return out


def primes_of_truth_table(table: Sequence[bool]) -> tuple[list[Cube], list[Cube]]:
    """Return ``(on_set_primes, off_set_primes)`` for a truth table.

    ``table[i]`` is the output for input minterm ``i`` with variable 0 as the
    most significant bit (matching :meth:`Cube.from_minterm`).
    """
    n = len(table)
    width = n.bit_length() - 1
    if 1 << width != n:
        raise LogicError(f"truth table length {n} is not a power of two")
    on = [i for i, v in enumerate(table) if v]
    off = [i for i, v in enumerate(table) if not v]
    return prime_implicants(on, width), prime_implicants(off, width)


def minimal_cover(
    minterms: Iterable[int], width: int, dont_cares: Iterable[int] = ()
) -> list[Cube]:
    """A small (greedy essential-first) prime cover of the on-set.

    Exact minimality is not required anywhere in the pipeline; this provides
    good two-level covers for cell modelling and for tests.
    """
    on = sorted(set(minterms))
    primes = prime_implicants(on, width, dont_cares)
    remaining = set(on)
    chosen: list[Cube] = []
    # Essential primes first.
    for m in on:
        bits = tuple((m >> (width - 1 - i)) & 1 for i in range(width))
        covering = [p for p in primes if p.contains_minterm(bits)]
        if len(covering) == 1 and covering[0] not in chosen:
            chosen.append(covering[0])
    for p in chosen:
        remaining -= set(p.minterms())
    # Greedy for the rest: biggest marginal coverage, fewest literals.
    while remaining:
        best = max(
            primes,
            key=lambda p: (
                len(set(p.minterms()) & remaining),
                -p.literal_count(),
            ),
        )
        gained = set(best.minterms()) & remaining
        if not gained:
            raise LogicError("prime cover cannot cover on-set (internal error)")
        chosen.append(best)
        remaining -= gained
    return chosen

"""Cubes in positional notation.

A :class:`Cube` is a product term over an ordered tuple of variables; each
position holds one of ``ZERO`` (complemented literal), ``ONE`` (positive
literal) or ``DASH`` (variable absent).  Cubes are the currency of the
paper's synthesis algorithm: the SOP covers of technology-independent nodes
are lists of cubes, ranked and selected by *essential weight* against the
SPCF.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro.errors import LogicError

ZERO = 0
ONE = 1
DASH = 2

_CHARS = {ZERO: "0", ONE: "1", DASH: "-"}
_VALUES = {"0": ZERO, "1": ONE, "-": DASH, "2": DASH}


@dataclass(frozen=True)
class Cube:
    """A product term over ``len(values)`` positional variables."""

    values: tuple[int, ...]

    def __post_init__(self) -> None:
        for v in self.values:
            if v not in (ZERO, ONE, DASH):
                raise LogicError(f"invalid cube value {v!r}")

    # ---------------------------------------------------------- constructors

    @staticmethod
    def from_string(text: str) -> "Cube":
        """Parse e.g. ``"1-0"`` into a cube."""
        try:
            return Cube(tuple(_VALUES[ch] for ch in text.strip()))
        except KeyError as exc:
            raise LogicError(f"invalid cube character in {text!r}") from exc

    @staticmethod
    def full(width: int) -> "Cube":
        """The universal cube (all dashes) of the given width."""
        return Cube((DASH,) * width)

    @staticmethod
    def from_minterm(index: int, width: int) -> "Cube":
        """The minterm cube for ``index`` with variable 0 as the MSB."""
        if not 0 <= index < (1 << width):
            raise LogicError(f"minterm {index} out of range for width {width}")
        bits = tuple((index >> (width - 1 - i)) & 1 for i in range(width))
        return Cube(bits)

    @staticmethod
    def from_literals(literals: Mapping[int, bool], width: int) -> "Cube":
        """Build a cube from a ``{position: polarity}`` literal map."""
        vals = [DASH] * width
        for pos, pol in literals.items():
            if not 0 <= pos < width:
                raise LogicError(f"literal position {pos} out of range")
            vals[pos] = ONE if pol else ZERO
        return Cube(tuple(vals))

    # --------------------------------------------------------------- queries

    @property
    def width(self) -> int:
        return len(self.values)

    def literal_count(self) -> int:
        """Number of non-dash positions."""
        return sum(1 for v in self.values if v != DASH)

    def literals(self) -> dict[int, bool]:
        """Return ``{position: polarity}`` for the non-dash positions."""
        return {i: v == ONE for i, v in enumerate(self.values) if v != DASH}

    def contains_minterm(self, bits: Sequence[int]) -> bool:
        """True iff the cube covers the given 0/1 assignment."""
        if len(bits) != self.width:
            raise LogicError("minterm width mismatch")
        return all(v == DASH or v == b for v, b in zip(self.values, bits))

    def covers(self, other: "Cube") -> bool:
        """True iff every minterm of ``other`` is covered by this cube."""
        if other.width != self.width:
            raise LogicError("cube width mismatch")
        return all(
            sv == DASH or sv == ov for sv, ov in zip(self.values, other.values)
        )

    def intersect(self, other: "Cube") -> "Cube | None":
        """Cube intersection, or ``None`` if the cubes are disjoint."""
        if other.width != self.width:
            raise LogicError("cube width mismatch")
        out = []
        for sv, ov in zip(self.values, other.values):
            if sv == DASH:
                out.append(ov)
            elif ov == DASH or ov == sv:
                out.append(sv)
            else:
                return None
        return Cube(tuple(out))

    def distance(self, other: "Cube") -> int:
        """Number of positions where the cubes conflict (0/1 vs 1/0)."""
        if other.width != self.width:
            raise LogicError("cube width mismatch")
        return sum(
            1
            for sv, ov in zip(self.values, other.values)
            if sv != DASH and ov != DASH and sv != ov
        )

    def cofactor(self, position: int, value: bool) -> "Cube | None":
        """Shannon cofactor with respect to one variable, or ``None`` if empty."""
        v = self.values[position]
        want = ONE if value else ZERO
        if v != DASH and v != want:
            return None
        vals = list(self.values)
        vals[position] = DASH
        return Cube(tuple(vals))

    def expand_position(self, position: int) -> "Cube":
        """Raise (remove) the literal at ``position``."""
        vals = list(self.values)
        vals[position] = DASH
        return Cube(tuple(vals))

    def minterms(self) -> Iterator[int]:
        """Iterate minterm indices (variable 0 = MSB) covered by the cube."""
        dash_positions = [i for i, v in enumerate(self.values) if v == DASH]
        base = 0
        for i, v in enumerate(self.values):
            if v == ONE:
                base |= 1 << (self.width - 1 - i)
        for combo in range(1 << len(dash_positions)):
            idx = base
            for j, pos in enumerate(dash_positions):
                if (combo >> j) & 1:
                    idx |= 1 << (self.width - 1 - pos)
            yield idx

    def num_minterms(self) -> int:
        """Number of minterms covered."""
        return 1 << sum(1 for v in self.values if v == DASH)

    def to_dict(self, names: Sequence[str]) -> dict[str, bool]:
        """Return ``{name: polarity}`` using the given variable names."""
        if len(names) != self.width:
            raise LogicError("name list width mismatch")
        return {
            names[i]: v == ONE for i, v in enumerate(self.values) if v != DASH
        }

    def to_expr_string(self, names: Sequence[str]) -> str:
        """Render as a product term, e.g. ``"a & ~b"`` (``"1"`` if universal)."""
        lits = [
            (names[i] if v == ONE else f"~{names[i]}")
            for i, v in enumerate(self.values)
            if v != DASH
        ]
        return " & ".join(lits) if lits else "1"

    def __str__(self) -> str:
        return "".join(_CHARS[v] for v in self.values)


def merge_adjacent(a: Cube, b: Cube) -> Cube | None:
    """Combine two cubes differing in exactly one opposed literal.

    This is the Quine–McCluskey merge step: ``01-`` + ``11-`` → ``-1-``.
    Returns ``None`` when the cubes are not adjacent.
    """
    if a.width != b.width:
        raise LogicError("cube width mismatch")
    diff = -1
    for i, (av, bv) in enumerate(zip(a.values, b.values)):
        if av == bv:
            continue
        if av == DASH or bv == DASH:
            return None
        if diff >= 0:
            return None
        diff = i
    if diff < 0:
        return None
    return a.expand_position(diff)


def cover_covers_minterm(cubes: Iterable[Cube], bits: Sequence[int]) -> bool:
    """True iff any cube in the iterable covers the minterm."""
    return any(c.contains_minterm(bits) for c in cubes)

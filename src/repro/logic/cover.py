"""Sum-of-products covers over named variables.

A :class:`Cover` couples a list of :class:`~repro.logic.cube.Cube` with the
ordered variable names they are defined over.  Covers are used for cell
function models, for the reduced on/off-set covers ``n^0`` / ``n^1`` of the
masking synthesis, and for decomposition into gates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.bdd.manager import BddManager, Function, cube_function, disjunction
from repro.errors import LogicError
from repro.logic.cube import Cube


@dataclass(frozen=True)
class Cover:
    """An SOP cover: the disjunction of ``cubes`` over ``names``."""

    names: tuple[str, ...]
    cubes: tuple[Cube, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for c in self.cubes:
            if c.width != len(self.names):
                raise LogicError(
                    f"cube width {c.width} does not match {len(self.names)} names"
                )

    # ---------------------------------------------------------- constructors

    @staticmethod
    def from_strings(names: Sequence[str], rows: Iterable[str]) -> "Cover":
        """Build from positional-cube strings, e.g. ``["1-0", "01-"]``."""
        return Cover(tuple(names), tuple(Cube.from_string(r) for r in rows))

    @staticmethod
    def from_cube_dicts(
        names: Sequence[str], cubes: Iterable[Mapping[str, bool]]
    ) -> "Cover":
        """Build from ``{name: polarity}`` dictionaries (ISOP output format)."""
        index = {n: i for i, n in enumerate(names)}
        built = []
        for cube in cubes:
            try:
                lits = {index[n]: bool(v) for n, v in cube.items()}
            except KeyError as exc:
                raise LogicError(f"cube uses unknown variable {exc}") from exc
            built.append(Cube.from_literals(lits, len(names)))
        return Cover(tuple(names), tuple(built))

    # --------------------------------------------------------------- queries

    @property
    def num_cubes(self) -> int:
        return len(self.cubes)

    def literal_count(self) -> int:
        """Total number of literals across all cubes."""
        return sum(c.literal_count() for c in self.cubes)

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        """Evaluate the SOP under a total assignment."""
        bits = [int(bool(assignment[n])) for n in self.names]
        return any(c.contains_minterm(bits) for c in self.cubes)

    def to_function(
        self, mgr: BddManager, rename: Mapping[str, str] | None = None
    ) -> Function:
        """Build the BDD of the cover; ``rename`` maps names to manager vars."""
        fns = []
        for c in self.cubes:
            lits = c.to_dict(self.names)
            if rename is not None:
                lits = {rename[n]: v for n, v in lits.items()}
            fns.append(cube_function(mgr, lits))
        return disjunction(mgr, fns)

    def sorted_by_literal_count(self) -> "Cover":
        """Cubes in ascending literal count (the paper's selection order)."""
        return Cover(
            self.names,
            tuple(sorted(self.cubes, key=lambda c: (c.literal_count(), c.values))),
        )

    def without_cube(self, index: int) -> "Cover":
        """Cover with the cube at ``index`` removed."""
        return Cover(self.names, self.cubes[:index] + self.cubes[index + 1 :])

    def to_expr_string(self) -> str:
        """Render as a two-level expression string (``"0"`` if empty)."""
        if not self.cubes:
            return "0"
        return " | ".join(f"({c.to_expr_string(self.names)})" for c in self.cubes)

    def __str__(self) -> str:
        return self.to_expr_string()

"""Word-parallel evaluation backends over :class:`CompiledCircuit`.

Two interchangeable backends implement the same contract — *identical*
results, bit for bit:

* :class:`PythonWordBackend` — arbitrary-precision Python ints, one word per
  net holding ``width`` patterns (the historical ``simulate_words``
  semantics).  Zero dependencies.  CPython big-int bitwise operators are a
  single C loop over 30-bit digits, so this is also the *fastest* backend
  for the word-in/word-out API at typical batch sizes: one gate evaluation
  costs a few hundred nanoseconds of dispatch, versus 1–2 µs per NumPy ufunc
  call.
* :class:`NumpyWordBackend` — patterns split into 64-bit lanes held in a
  ``(n_nets, n_lanes)`` ``uint64`` matrix.  Its native interface is
  :meth:`NumpyWordBackend.eval_lanes`, which keeps everything in lane form;
  that is where NumPy wins — on *large* Monte-Carlo batches (hundreds of
  thousands of patterns) whose results are consumed as lanes (bit counts,
  mismatch masks) rather than converted back to big ints.  Small batches
  are evaluated levelized and *grouped by cell type* (one vectorized
  expression per same-cell group per level) to amortize ufunc dispatch;
  large batches switch to per-gate row views to avoid gather copies.

Backend selection (:func:`select_backend`):

1. an explicit ``name`` argument wins ("python" / "numpy"),
2. else the ``REPRO_ENGINE_BACKEND`` environment variable,
3. else "python" — measured fastest for the big-int word API (see
   DESIGN.md, "Compiled circuit engine"); the NumPy backend is opt-in for
   lane-native pipelines and huge batches.

Requesting "numpy" when NumPy is missing raises
:class:`~repro.errors.EngineError`; nothing in the library *requires*
NumPy.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro import obs
from repro.engine.ir import (
    BACKEND_ENV_VAR,
    CompiledCircuit,
    cell_ternary_function,
    compile_circuit,
    pack_input_words,
    validated_backend_name,
)
from repro.errors import EngineError

_METER = obs.get_meter()
_EVAL_CALLS = _METER.counter(
    "repro_engine_eval_calls_total", "word-batch evaluation calls"
)
_EVAL_PATTERNS = _METER.counter(
    "repro_engine_eval_patterns_total", "patterns evaluated by word-batch calls"
)
_EVAL_BATCH = _METER.histogram(
    "repro_engine_eval_batch_patterns",
    "patterns per word-batch evaluation call",
    obs.BATCH_BUCKETS,
)


def _record_eval(backend: str, kind: str, patterns: int) -> None:
    """One guarded recording helper so hot paths pay a single branch."""
    _EVAL_CALLS.add(1, backend=backend, kind=kind)
    _EVAL_PATTERNS.add(patterns, backend=backend, kind=kind)
    _EVAL_BATCH.observe(patterns, backend=backend, kind=kind)

try:  # NumPy is optional; everything degrades to the pure-Python backend.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on numpy-free installs
    _np = None

__all__ = [
    "BACKEND_ENV_VAR",
    "PythonWordBackend",
    "NumpyWordBackend",
    "available_backends",
    "numpy_available",
    "select_backend",
    "evaluate_words",
    "evaluate_ternary_words",
    "words_to_lanes",
    "lanes_to_words",
]

#: Lane count at or below which the numpy backend uses grouped gathers;
#: above it, gather copies cost more than the per-gate dispatch they save.
_GROUPED_LANES_MAX = 256

_LANE_MASK = 0xFFFFFFFFFFFFFFFF


def _check_width(width: int) -> None:
    """Reject negative widths before they hit a shift deep in a backend.

    ``width == 0`` is a legitimate empty batch: every word is masked to 0
    and the result is well-formed all-zero words.
    """
    if width < 0:
        raise EngineError(f"pattern width {width} must be non-negative")


def _check_ternary_inputs(
    compiled: CompiledCircuit,
    ones: Sequence[int],
    zeros: Sequence[int],
    mask: int,
) -> None:
    """Every pattern bit of every input must carry 0, 1, or X.

    A position where *neither* rail is set has no value at all — the Kleene
    lattice has no such element and the rail algebra would silently turn it
    into garbage downstream, so it is rejected here, at the only place the
    caller hands rails to a backend.
    """
    if len(ones) != compiled.n_inputs or len(zeros) != compiled.n_inputs:
        raise EngineError(
            f"({len(ones)}, {len(zeros)}) rail words for "
            f"{compiled.n_inputs} inputs"
        )
    for i, (h, l) in enumerate(zip(ones, zeros)):
        if (h | l) & mask != mask:
            raise EngineError(
                f"input {compiled.inputs[i]!r}: rails leave pattern bit(s) "
                f"{mask & ~(h | l):#x} with no value (set the 1-rail, the "
                "0-rail, or both for X)"
            )


class PythonWordBackend:
    """Bit-parallel evaluation on arbitrary-precision Python ints."""

    name = "python"

    def eval_ternary_words(
        self,
        compiled: CompiledCircuit,
        ones: Sequence[int],
        zeros: Sequence[int],
        width: int,
    ) -> tuple[list[int], list[int]]:
        """Dual-rail Kleene evaluation of ``width`` packed ternary patterns.

        ``ones[i]`` / ``zeros[i]`` are the can-be-1 / can-be-0 rails of input
        ``i``; a bit set in both marks that pattern's input as X.  Returns
        the two rails for every net (same convention).
        """
        _check_width(width)
        mask = (1 << width) - 1
        masked_ones = [h & mask for h in ones]
        masked_zeros = [l & mask for l in zeros]
        _check_ternary_inputs(compiled, masked_ones, masked_zeros, mask)
        hi = masked_ones + [0] * compiled.n_gates
        lo = masked_zeros + [0] * compiled.n_gates
        for func, out, fanins in compiled.ternary_plan:
            args: list[int] = []
            for f in fanins:
                args.append(hi[f])
                args.append(lo[f])
            hi[out], lo[out] = func(mask, *args)
        if _METER.enabled:
            _record_eval("python", "ternary", width)
        return hi, lo

    def eval_words(
        self, compiled: CompiledCircuit, input_words: Sequence[int], width: int
    ) -> list[int]:
        """Evaluate ``width`` packed patterns; returns one word per net."""
        _check_width(width)
        if len(input_words) != compiled.n_inputs:
            raise EngineError(
                f"{len(input_words)} input words for {compiled.n_inputs} inputs"
            )
        mask = (1 << width) - 1
        values = [0] * compiled.n_nets
        for i, word in enumerate(input_words):
            values[i] = word & mask
        for func, out, fanins in compiled.plan:
            values[out] = func(mask, *[values[f] for f in fanins])
        if _METER.enabled:
            _record_eval("python", "binary", width)
        return values


def words_to_lanes(input_words: Sequence[int], width: int):
    """Pack big-int words into a little-endian ``(n, n_lanes)`` uint64 matrix."""
    if _np is None:
        raise EngineError("numpy is not importable")
    _check_width(width)
    mask = (1 << width) - 1
    n_lanes = max(1, (width + 63) // 64)
    nbytes = n_lanes * 8
    out = _np.zeros((len(input_words), n_lanes), dtype="<u8")
    for i, word in enumerate(input_words):
        out[i] = _np.frombuffer((word & mask).to_bytes(nbytes, "little"), dtype="<u8")
    return out


def lanes_to_words(lanes, width: int) -> list[int]:
    """Unpack a ``(n, n_lanes)`` uint64 matrix back into masked big ints."""
    mask = (1 << width) - 1
    return [
        int.from_bytes(_np.ascontiguousarray(row).tobytes(), "little") & mask
        for row in lanes
    ]


class NumpyWordBackend:
    """Levelized uint64-lane evaluation; identical results to pure Python."""

    name = "numpy"

    def __init__(self) -> None:
        if _np is None:
            raise EngineError("numpy backend requested but numpy is not importable")

    def _group_plan(self, compiled: CompiledCircuit, ternary: bool = False):
        """Gates grouped by (level, cell); cached on the compiled circuit.

        Each group is ``(func, out_indices, fanin_matrix, n_pins)`` with
        NumPy index arrays, ordered by level so every gate's fanins are
        already computed when its group runs.  ``ternary`` selects the
        dual-rail cell functions (cached under a separate key).
        """
        cache_key = "numpy_ternary_group_plan" if ternary else "numpy_group_plan"
        plan = compiled._derived.get(cache_key)
        if plan is None:
            groups: dict[tuple[int, tuple], list[int]] = {}
            for pos, cell in enumerate(compiled.gate_cells):
                level = compiled.levels[compiled.n_inputs + pos]
                groups.setdefault((level, cell._key), []).append(pos)
            plan = []
            for (_level, _key), positions in sorted(
                groups.items(), key=lambda item: item[0][0]
            ):
                first = positions[0]
                func = (
                    cell_ternary_function(compiled.gate_cells[first])
                    if ternary
                    else compiled.plan[first][0]
                )
                n_pins = len(compiled.gate_fanins[first])
                outs = _np.array(
                    [compiled.n_inputs + p for p in positions], dtype=_np.intp
                )
                if n_pins:
                    fanin_matrix = _np.array(
                        [compiled.gate_fanins[p] for p in positions],
                        dtype=_np.intp,
                    )
                else:
                    fanin_matrix = None
                plan.append((func, outs, fanin_matrix, n_pins))
            plan = tuple(plan)
            compiled._derived[cache_key] = plan
        return plan

    def eval_lanes(self, compiled: CompiledCircuit, input_lanes):
        """Native path: ``(n_inputs, n_lanes)`` uint64 in, all nets out.

        Returns the full ``(n_nets, n_lanes)`` value matrix (row ``i`` is
        net ``i`` in engine order).  Bits of the final lane beyond the
        caller's pattern count are unspecified; mask on consumption.
        """
        lanes = _np.asarray(input_lanes, dtype=_np.uint64)
        if lanes.ndim != 2 or lanes.shape[0] != compiled.n_inputs:
            raise EngineError(
                f"input lane matrix {getattr(lanes, 'shape', None)} does not "
                f"match {compiled.n_inputs} inputs"
            )
        n_lanes = lanes.shape[1]
        values = _np.empty((compiled.n_nets, n_lanes), dtype=_np.uint64)
        values[: compiled.n_inputs] = lanes
        m = _np.uint64(_LANE_MASK)
        if n_lanes <= _GROUPED_LANES_MAX:
            for func, outs, fanin_matrix, n_pins in self._group_plan(compiled):
                if n_pins == 0:
                    values[outs] = func(m)
                else:
                    ins = values[fanin_matrix]  # (group, pins, lanes)
                    values[outs] = func(m, *(ins[:, p] for p in range(n_pins)))
        else:
            for func, out, fanins in compiled.plan:
                values[out] = func(m, *(values[f] for f in fanins))
        if _METER.enabled:
            _record_eval("numpy", "binary", n_lanes * 64)
        return values

    def eval_words(
        self, compiled: CompiledCircuit, input_words: Sequence[int], width: int
    ) -> list[int]:
        """Evaluate ``width`` packed patterns; returns one word per net."""
        _check_width(width)
        if len(input_words) != compiled.n_inputs:
            raise EngineError(
                f"{len(input_words)} input words for {compiled.n_inputs} inputs"
            )
        values = self.eval_lanes(compiled, words_to_lanes(input_words, width))
        return lanes_to_words(values, width)

    def eval_ternary_lanes(self, compiled: CompiledCircuit, one_lanes, zero_lanes):
        """Native dual-rail path: two ``(n_inputs, n_lanes)`` uint64 rails in,
        two ``(n_nets, n_lanes)`` rail matrices out.

        Rail semantics match :meth:`PythonWordBackend.eval_ternary_words`;
        bits beyond the caller's pattern count are unspecified, and rail
        consistency (every bit 0/1/X) is the caller's responsibility on this
        low-level path — :meth:`eval_ternary_words` validates it.
        """
        ones = _np.asarray(one_lanes, dtype=_np.uint64)
        zeros = _np.asarray(zero_lanes, dtype=_np.uint64)
        if (
            ones.ndim != 2
            or ones.shape != zeros.shape
            or ones.shape[0] != compiled.n_inputs
        ):
            raise EngineError(
                f"rail lane matrices {getattr(ones, 'shape', None)} / "
                f"{getattr(zeros, 'shape', None)} do not match "
                f"{compiled.n_inputs} inputs"
            )
        n_lanes = ones.shape[1]
        hi = _np.empty((compiled.n_nets, n_lanes), dtype=_np.uint64)
        lo = _np.empty((compiled.n_nets, n_lanes), dtype=_np.uint64)
        hi[: compiled.n_inputs] = ones
        lo[: compiled.n_inputs] = zeros
        m = _np.uint64(_LANE_MASK)
        if n_lanes <= _GROUPED_LANES_MAX:
            for func, outs, fanin_matrix, n_pins in self._group_plan(
                compiled, ternary=True
            ):
                if n_pins == 0:
                    hi[outs], lo[outs] = func(m)
                else:
                    ins_h = hi[fanin_matrix]  # (group, pins, lanes)
                    ins_l = lo[fanin_matrix]
                    args = []
                    for p in range(n_pins):
                        args.append(ins_h[:, p])
                        args.append(ins_l[:, p])
                    hi[outs], lo[outs] = func(m, *args)
        else:
            for func, out, fanins in compiled.ternary_plan:
                args = []
                for f in fanins:
                    args.append(hi[f])
                    args.append(lo[f])
                hi[out], lo[out] = func(m, *args)
        if _METER.enabled:
            _record_eval("numpy", "ternary", n_lanes * 64)
        return hi, lo

    def eval_ternary_words(
        self,
        compiled: CompiledCircuit,
        ones: Sequence[int],
        zeros: Sequence[int],
        width: int,
    ) -> tuple[list[int], list[int]]:
        """Dual-rail Kleene evaluation; bit-identical to the python backend."""
        _check_width(width)
        mask = (1 << width) - 1
        masked_ones = [h & mask for h in ones]
        masked_zeros = [l & mask for l in zeros]
        _check_ternary_inputs(compiled, masked_ones, masked_zeros, mask)
        hi, lo = self.eval_ternary_lanes(
            compiled,
            words_to_lanes(masked_ones, width),
            words_to_lanes(masked_zeros, width),
        )
        return lanes_to_words(hi, width), lanes_to_words(lo, width)


_python_backend = PythonWordBackend()
_numpy_backend: NumpyWordBackend | None = None


def numpy_available() -> bool:
    """True iff the NumPy backend can be instantiated."""
    return _np is not None


def available_backends() -> tuple[str, ...]:
    """Names of the backends usable in this interpreter."""
    return ("python", "numpy") if numpy_available() else ("python",)


def select_backend(name: str | None = None):
    """Resolve a backend instance (see module docstring for the rules).

    Validation is shared with :func:`repro.engine.ir.validated_backend_name`:
    an unknown name — explicit or via ``REPRO_ENGINE_BACKEND`` — raises
    :class:`~repro.errors.EngineError` naming the valid choices.
    """
    name = validated_backend_name(name)
    if name == "python":
        return _python_backend
    global _numpy_backend
    if _numpy_backend is None:
        _numpy_backend = NumpyWordBackend()  # raises if numpy missing
    return _numpy_backend


def evaluate_words(
    circuit,
    words: Mapping[str, int],
    width: int,
    backend: str | None = None,
) -> dict[str, int]:
    """Word-parallel evaluation with a per-net dict interface.

    Accepts a :class:`Circuit` or a :class:`CompiledCircuit`; this is the
    adapter :func:`repro.sim.simulate_words` is built on.
    """
    compiled = compile_circuit(circuit)
    row = pack_input_words(compiled, words, width)
    values = select_backend(backend).eval_words(compiled, row, width)
    return dict(zip(compiled.net_names, values))


def evaluate_ternary_words(
    circuit,
    ones: Mapping[str, int],
    zeros: Mapping[str, int],
    width: int,
    backend: str | None = None,
) -> tuple[dict[str, int], dict[str, int]]:
    """Dual-rail Kleene evaluation with a per-net dict interface.

    ``ones[net]`` / ``zeros[net]`` are the can-be-1 / can-be-0 rails of each
    primary input (a bit set in both = X); returns the two rails for every
    net.  Accepts a :class:`Circuit` or a :class:`CompiledCircuit`.
    """
    compiled = compile_circuit(circuit)
    one_row = pack_input_words(compiled, ones, width)
    zero_row = pack_input_words(compiled, zeros, width)
    hi, lo = select_backend(backend).eval_ternary_words(
        compiled, one_row, zero_row, width
    )
    return dict(zip(compiled.net_names, hi)), dict(zip(compiled.net_names, lo))

"""Compiled circuit engine: one lowering, many evaluation passes.

``repro.engine`` turns a :class:`~repro.netlist.circuit.Circuit` into a
:class:`CompiledCircuit` — levelized, integer-indexed flat arrays — and
evaluates packed pattern words through interchangeable backends (pure-Python
big ints, or NumPy ``uint64`` lanes when NumPy is importable).  The
simulation, STA, and Monte-Carlo verification passes all run on this IR;
the per-net dict APIs in :mod:`repro.sim` and :mod:`repro.sta` are thin
adapters over it.  See DESIGN.md ("Compiled circuit engine") for the
lowering and backend-selection rules.
"""

from repro.engine.backends import (
    NumpyWordBackend,
    PythonWordBackend,
    available_backends,
    evaluate_ternary_words,
    evaluate_words,
    lanes_to_words,
    numpy_available,
    select_backend,
    words_to_lanes,
)
from repro.engine.ir import (
    BACKEND_ENV_VAR,
    KNOWN_BACKEND_NAMES,
    CompiledCircuit,
    cell_prime_tables,
    cell_ternary_function,
    cell_word_function,
    compile_circuit,
    compile_program,
    pack_input_words,
    patterns_to_words,
    run_program,
    validated_backend_name,
)

__all__ = [
    "CompiledCircuit",
    "compile_circuit",
    "compile_program",
    "run_program",
    "cell_word_function",
    "cell_ternary_function",
    "cell_prime_tables",
    "pack_input_words",
    "patterns_to_words",
    "PythonWordBackend",
    "NumpyWordBackend",
    "available_backends",
    "numpy_available",
    "select_backend",
    "evaluate_words",
    "evaluate_ternary_words",
    "words_to_lanes",
    "lanes_to_words",
    "BACKEND_ENV_VAR",
    "KNOWN_BACKEND_NAMES",
    "validated_backend_name",
]

"""Compiled circuit intermediate representation.

:func:`compile_circuit` lowers a :class:`~repro.netlist.circuit.Circuit`
*once* into a :class:`CompiledCircuit`: levelized, integer-indexed flat
arrays — gate opcode programs, fanin index lists, per-pin scaled delays,
output indices, and cached topo/level/fanout views.  Every evaluation pass
(zero-delay simulation, the floating-mode oracle, event-driven timing, STA,
and the Monte-Carlo verifiers) walks these arrays instead of re-deriving
topological order and paying per-gate dict lookups.

Net indexing convention: nets ``0 .. n_inputs-1`` are the primary inputs in
declaration order; nets ``n_inputs .. n_nets-1`` are the gate outputs in
topological order.  Gate *position* ``p`` therefore drives net index
``n_inputs + p``.

Cell functions are compiled twice:

* an **opcode program** — a flat postfix tuple interpreted by
  :func:`run_program` (the readable reference, also used by tests), and
* a **generated Python function** per distinct cell (cached library-wide)
  taking ``(mask, pin0, pin1, ...)`` words and returning the output word.
  ``NOT`` is emitted as ``mask ^ x`` so the same source works for both
  arbitrary-precision ints and NumPy ``uint64`` lanes.

The lowering is cached on the circuit against :attr:`Circuit.version`, so
repeated passes over an unmodified circuit compile exactly once.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro import obs
from repro.errors import EngineError, SimulationError
from repro.logic.expr import BoolExpr
from repro.netlist.cell import Cell
from repro.netlist.circuit import Circuit

_TRACER = obs.get_tracer("engine")
_METER = obs.get_meter()
_COMPILE_HITS = _METER.counter(
    "repro_engine_compile_cache_hits_total",
    "compile_circuit calls served from the Circuit.version cache",
)
_COMPILE_MISSES = _METER.counter(
    "repro_engine_compile_cache_misses_total",
    "compile_circuit calls that ran a fresh lowering",
)
_IR_GATES = _METER.gauge(
    "repro_engine_ir_gates", "gate count of the most recently lowered circuit"
)
_IR_NETS = _METER.gauge(
    "repro_engine_ir_nets", "net count of the most recently lowered circuit"
)

#: Environment variable overriding automatic backend selection.
BACKEND_ENV_VAR = "REPRO_ENGINE_BACKEND"

#: Every backend name the engine knows about, importable or not.
KNOWN_BACKEND_NAMES = ("python", "numpy")


def validated_backend_name(name: str | None = None, default: str = "python") -> str:
    """Resolve and validate a backend name (case/whitespace tolerant).

    ``None`` falls through to ``$REPRO_ENGINE_BACKEND``, then ``default``;
    an unset or empty variable is the documented "no preference" state.  An
    *unknown* value raises :class:`~repro.errors.EngineError` naming the
    valid choices — it must never silently fall back, whether it arrives as
    an explicit argument or through the environment.
    """
    source = "backend name"
    if name is None:
        name = os.environ.get(BACKEND_ENV_VAR)
        source = f"${BACKEND_ENV_VAR}"
    if name is None or not name.strip():
        return default
    normalized = name.strip().lower()
    if normalized not in KNOWN_BACKEND_NAMES:
        raise EngineError(
            f"unknown engine backend {name!r} (from {source}); "
            f"choose from {KNOWN_BACKEND_NAMES}"
        )
    return normalized

#: Opcodes of the postfix gate programs (``run_program`` is the interpreter).
OP_LOAD = 0  #: push the word of fanin pin ``arg``
OP_CONST = 1  #: push ``mask`` if ``arg`` else ``0``
OP_NOT = 2  #: pop x, push ``mask ^ x``
OP_AND = 3  #: pop y, x, push ``x & y``
OP_OR = 4  #: pop y, x, push ``x | y``
OP_XOR = 5  #: pop y, x, push ``x ^ y``

_BINOP = {"and": OP_AND, "or": OP_OR, "xor": OP_XOR}


def compile_program(
    expr: BoolExpr, pin_index: Mapping[str, int]
) -> tuple[tuple[int, int], ...]:
    """Lower a cell expression to a flat postfix opcode program."""
    prog: list[tuple[int, int]] = []

    def emit(e: BoolExpr) -> None:
        if e.op == "var":
            prog.append((OP_LOAD, pin_index[e.name]))
        elif e.op == "const":
            prog.append((OP_CONST, 1 if e.value else 0))
        elif e.op == "not":
            emit(e.args[0])
            prog.append((OP_NOT, 0))
        elif e.op in _BINOP:
            code = _BINOP[e.op]
            emit(e.args[0])
            for a in e.args[1:]:
                emit(a)
                prog.append((code, 0))
        else:  # pragma: no cover - parser emits only the ops above
            raise EngineError(f"cannot lower expression op {e.op!r}")

    emit(expr)
    return tuple(prog)


def run_program(
    program: Sequence[tuple[int, int]], mask: int, pins: Sequence[int]
) -> int:
    """Interpret an opcode program over integer words (reference semantics)."""
    stack: list[int] = []
    for op, arg in program:
        if op == OP_LOAD:
            stack.append(pins[arg])
        elif op == OP_CONST:
            stack.append(mask if arg else 0)
        elif op == OP_NOT:
            stack[-1] = mask ^ stack[-1]
        else:
            y = stack.pop()
            if op == OP_AND:
                stack[-1] &= y
            elif op == OP_OR:
                stack[-1] |= y
            elif op == OP_XOR:
                stack[-1] ^= y
            else:  # pragma: no cover - defensive
                raise EngineError(f"bad opcode {op}")
    if len(stack) != 1:  # pragma: no cover - compile_program invariant
        raise EngineError("malformed program: stack depth != 1")
    return stack[0]


def _expr_source(e: BoolExpr, pin_index: Mapping[str, int]) -> str:
    if e.op == "var":
        return f"p{pin_index[e.name]}"
    if e.op == "const":
        return "m" if e.value else "(m & 0)"
    if e.op == "not":
        return f"(m ^ {_expr_source(e.args[0], pin_index)})"
    sep = {"and": " & ", "or": " | ", "xor": " ^ "}[e.op]
    return "(" + sep.join(_expr_source(a, pin_index) for a in e.args) + ")"


_func_cache: dict[tuple, Callable[..., int]] = {}


def cell_word_function(cell: Cell) -> Callable[..., int]:
    """The generated word-evaluation function of ``cell`` (cached per cell).

    Signature ``f(mask, pin0, ..., pinN) -> word``; valid for Python ints
    (with ``mask = (1 << width) - 1``) and for NumPy ``uint64`` arrays (with
    ``mask = uint64(~0)``), since complement is emitted as ``mask ^ x``.
    """
    key = cell._key
    func = _func_cache.get(key)
    if func is None:
        pin_index = {pin: i for i, pin in enumerate(cell.inputs)}
        params = "".join(f", p{i}" for i in range(cell.num_inputs))
        src = f"def _f(m{params}):\n    return {_expr_source(cell.expr, pin_index)}\n"
        namespace: dict[str, Any] = {}
        exec(compile(src, f"<cell {cell.name}>", "exec"), namespace)
        func = namespace["_f"]
        _func_cache[key] = func
    return func


_ternary_cache: dict[tuple, Callable[..., tuple[int, int]]] = {}


def cell_ternary_function(cell: Cell) -> Callable[..., tuple[int, int]]:
    """The generated dual-rail Kleene word function of ``cell`` (cached).

    Signature ``f(mask, h0, l0, h1, l1, ...) -> (h, l)``.  Each pin carries
    two rails: ``h`` ("the value can be 1") and ``l`` ("the value can be 0"),
    so per bit position the encodings are ``(1, 0)`` = 1, ``(0, 1)`` = 0 and
    ``(1, 1)`` = X (unknown / in transition).  The rails compose per
    connective with Kleene's strong three-valued semantics::

        NOT  (h, l)            -> (l, h)
        AND  (h1, l1), (h2, l2) -> (h1 & h2, l1 | l2)
        OR   (h1, l1), (h2, l2) -> (h1 | h2, l1 & l2)
        XOR  ...                -> ((h1 & l2) | (l1 & h2), (h1 & h2) | (l1 & l2))

    Like :func:`cell_word_function`, the generated source uses only ``&``,
    ``|`` and ``mask``, so the same function evaluates arbitrary-precision
    Python ints and NumPy ``uint64`` lanes.  Evaluation is compositional
    over the cell's expression tree (SSA-style temporaries, linear size), a
    sound over-approximation of the natural ternary extension of the cell
    function: an X that the natural extension would mask can survive (e.g.
    ``x & ~x`` on X inputs yields X, not 0), but a 0/1 verdict is always
    exact.
    """
    key = cell._key
    func = _ternary_cache.get(key)
    if func is None:
        pin_index = {pin: i for i, pin in enumerate(cell.inputs)}
        lines: list[str] = []
        counter = 0

        def emit(e: BoolExpr) -> tuple[str, str]:
            nonlocal counter
            if e.op == "var":
                i = pin_index[e.name]
                return f"h{i}", f"l{i}"
            if e.op == "const":
                return ("m", "(m & 0)") if e.value else ("(m & 0)", "m")
            if e.op == "not":
                hi, lo = emit(e.args[0])
                return lo, hi
            if e.op not in _BINOP:  # pragma: no cover - parser emits only these
                raise EngineError(f"cannot lower expression op {e.op!r}")
            hi, lo = emit(e.args[0])
            for a in e.args[1:]:
                h2, l2 = emit(a)
                th, tl = f"th{counter}", f"tl{counter}"
                counter += 1
                if e.op == "and":
                    lines.append(f"    {th} = {hi} & {h2}")
                    lines.append(f"    {tl} = {lo} | {l2}")
                elif e.op == "or":
                    lines.append(f"    {th} = {hi} | {h2}")
                    lines.append(f"    {tl} = {lo} & {l2}")
                else:  # xor
                    lines.append(f"    {th} = ({hi} & {l2}) | ({lo} & {h2})")
                    lines.append(f"    {tl} = ({hi} & {h2}) | ({lo} & {l2})")
                hi, lo = th, tl
            return hi, lo

        hi, lo = emit(cell.expr)
        params = "".join(f", h{i}, l{i}" for i in range(cell.num_inputs))
        body = "\n".join(lines)
        src = (
            f"def _f(m{params}):\n{body}\n    return ({hi}, {lo})\n"
            if body
            else f"def _f(m{params}):\n    return ({hi}, {lo})\n"
        )
        namespace: dict[str, Any] = {}
        exec(compile(src, f"<ternary cell {cell.name}>", "exec"), namespace)
        func = namespace["_f"]
        _ternary_cache[key] = func
    return func


_prime_cache: dict[tuple, tuple[tuple, tuple]] = {}


def cell_prime_tables(
    cell: Cell,
) -> tuple[
    tuple[tuple[tuple[int, ...], tuple[bool, ...]], ...],
    tuple[tuple[tuple[int, ...], tuple[bool, ...]], ...],
]:
    """On-set/off-set primes as ``(pin_positions, polarities)`` tuples.

    The index-based form of :meth:`Cell.primes`, precomputed once per cell so
    the floating-mode oracle and STA never touch pin-name dicts.
    """
    key = cell._key
    cached = _prime_cache.get(key)
    if cached is None:
        pin_index = {pin: i for i, pin in enumerate(cell.inputs)}
        on, off = cell.primes()

        def table(primes):
            rows = []
            for prime in primes:
                lits = prime.to_dict(cell.inputs)
                pins = tuple(pin_index[p] for p in lits)
                pols = tuple(bool(lits[p]) for p in lits)
                rows.append((pins, pols))
            return tuple(rows)

        cached = (table(on), table(off))
        _prime_cache[key] = cached
    return cached


@dataclass(frozen=True, eq=False)
class CompiledCircuit:
    """A :class:`Circuit` lowered to levelized, integer-indexed flat arrays.

    Immutable; derived views (evaluation plan, fanouts, arrival times) are
    computed lazily and cached.  Contains only tuples of ints, cells, and
    plain functions, so it pickles cleanly for sharding/batching.
    """

    name: str
    source_version: int
    inputs: tuple[str, ...]
    outputs: tuple[str, ...]
    net_names: tuple[str, ...]
    n_inputs: int
    gate_names: tuple[str, ...]
    gate_cells: tuple[Cell, ...]
    gate_fanins: tuple[tuple[int, ...], ...]
    gate_delays: tuple[tuple[int, ...], ...]
    gate_programs: tuple[tuple[tuple[int, int], ...], ...]
    levels: tuple[int, ...]
    output_index: tuple[int, ...]
    _derived: dict = field(default_factory=dict, repr=False, compare=False)

    # ------------------------------------------------------------- structure

    @property
    def n_nets(self) -> int:
        return len(self.net_names)

    @property
    def n_gates(self) -> int:
        return len(self.gate_names)

    @property
    def net_index(self) -> Mapping[str, int]:
        """Net name -> index (inputs first, then gates in topo order)."""
        idx = self._derived.get("net_index")
        if idx is None:
            idx = {n: i for i, n in enumerate(self.net_names)}
            self._derived["net_index"] = idx
        return idx

    @property
    def gate_position(self) -> Mapping[str, int]:
        """Gate name -> position in the topological gate arrays."""
        pos = self._derived.get("gate_position")
        if pos is None:
            pos = {n: p for p, n in enumerate(self.gate_names)}
            self._derived["gate_position"] = pos
        return pos

    @property
    def plan(self) -> tuple[tuple[Callable[..., int], int, tuple[int, ...]], ...]:
        """Evaluation plan: ``(word_func, out_net_index, fanin_indices)``."""
        plan = self._derived.get("plan")
        if plan is None:
            plan = tuple(
                (cell_word_function(cell), self.n_inputs + pos, fanins)
                for pos, (cell, fanins) in enumerate(
                    zip(self.gate_cells, self.gate_fanins)
                )
            )
            self._derived["plan"] = plan
        return plan

    @property
    def ternary_plan(
        self,
    ) -> tuple[tuple[Callable[..., tuple[int, int]], int, tuple[int, ...]], ...]:
        """Dual-rail plan: ``(ternary_func, out_net_index, fanin_indices)``."""
        plan = self._derived.get("ternary_plan")
        if plan is None:
            plan = tuple(
                (cell_ternary_function(cell), self.n_inputs + pos, fanins)
                for pos, (cell, fanins) in enumerate(
                    zip(self.gate_cells, self.gate_fanins)
                )
            )
            self._derived["ternary_plan"] = plan
        return plan

    def fanouts(self) -> tuple[tuple[tuple[int, int], ...], ...]:
        """Per net index: ``(reader_gate_position, pin)`` pairs."""
        fo = self._derived.get("fanouts")
        if fo is None:
            lists: list[list[tuple[int, int]]] = [[] for _ in self.net_names]
            for pos, fanins in enumerate(self.gate_fanins):
                for pin, net in enumerate(fanins):
                    lists[net].append((pos, pin))
            fo = tuple(tuple(entry) for entry in lists)
            self._derived["fanouts"] = fo
        return fo

    def gate_primes(self, pos: int):
        """On/off prime tables of gate ``pos`` (index/polarity form)."""
        return cell_prime_tables(self.gate_cells[pos])

    # ---------------------------------------------------------------- timing

    def arrival(self) -> tuple[int, ...]:
        """Latest arrival time per net (classic topological max-plus)."""
        arr = self._derived.get("arrival")
        if arr is None:
            times = [0] * self.n_nets
            for pos, (fanins, delays) in enumerate(
                zip(self.gate_fanins, self.gate_delays)
            ):
                idx = self.n_inputs + pos
                times[idx] = max(
                    (times[f] + d for f, d in zip(fanins, delays)), default=0
                )
            arr = tuple(times)
            self._derived["arrival"] = arr
        return arr

    def min_stable(self) -> tuple[int, ...]:
        """Prime-implicant lower bound on stabilization time per net."""
        ms = self._derived.get("min_stable")
        if ms is None:
            times = [0] * self.n_nets
            for pos, (fanins, delays) in enumerate(
                zip(self.gate_fanins, self.gate_delays)
            ):
                idx = self.n_inputs + pos
                if not fanins:
                    continue
                on, off = self.gate_primes(pos)
                best = None
                for pins, _pols in (*on, *off):
                    worst = 0
                    for p in pins:
                        t = times[fanins[p]] + delays[p]
                        if t > worst:
                            worst = t
                    if best is None or worst < best:
                        best = worst
                times[idx] = best if best is not None else 0
            ms = tuple(times)
            self._derived["min_stable"] = ms
        return ms

    def critical_delay(self) -> int:
        """Largest arrival time over the primary outputs."""
        arrival = self.arrival()
        return max((arrival[i] for i in self.output_index), default=0)

    def critical_output_indices(
        self, target: int | None = None, threshold: float = 0.9
    ) -> tuple[int, ...]:
        """Output net indices where at least one speed-path terminates.

        ``target`` defaults to ``floor(threshold * critical_delay)``, the
        paper's speed-path threshold ``Delta_y``.
        """
        if target is None:
            if not 0.0 < threshold <= 1.0:
                raise EngineError(f"threshold fraction {threshold} outside (0, 1]")
            target = int(math.floor(threshold * self.critical_delay()))
        arrival = self.arrival()
        return tuple(i for i in self.output_index if arrival[i] > target)

    # ------------------------------------------------------------ evaluation

    def eval_bits(self, input_bits: Sequence[int]) -> list[int]:
        """Evaluate one pattern (0/1 per input, engine-ordered) -> all nets."""
        if len(input_bits) != self.n_inputs:
            raise EngineError(
                f"{len(input_bits)} input bits for {self.n_inputs} inputs"
            )
        values = [0] * self.n_nets
        for i, bit in enumerate(input_bits):
            values[i] = 1 if bit else 0
        for func, out, fanins in self.plan:
            values[out] = func(1, *[values[f] for f in fanins])
        return values

    def eval_pattern(self, pattern: Mapping[str, bool]) -> list[int]:
        """Evaluate one ``{input: bool}`` pattern -> 0/1 word per net."""
        bits = []
        for net in self.inputs:
            try:
                bits.append(1 if pattern[net] else 0)
            except KeyError:
                raise SimulationError(f"pattern missing input {net!r}") from None
        return self.eval_bits(bits)

    # --------------------------------------------------------------- rebuild

    def with_delay_scales(self, scales: Mapping[str, float]) -> "CompiledCircuit":
        """A compiled copy with aging multipliers applied to named gates.

        Only the delay arrays are rebuilt; logic structure, programs, and
        cached functions are shared.  Mirrors
        :meth:`Circuit.with_delay_scales` without re-lowering.
        """
        position = self.gate_position
        for name, scale in scales.items():
            if name not in position:
                raise EngineError(f"no gate {name!r} to scale")
            if scale < 1.0:
                raise EngineError(
                    f"gate {name!r}: delay scale {scale} < 1 "
                    "(aging can only slow gates down)"
                )
        delays = list(self.gate_delays)
        for name, scale in scales.items():
            pos = position[name]
            cell = self.gate_cells[pos]
            delays[pos] = tuple(
                int(round(d * scale)) for d in cell.pin_delays
            )
        return CompiledCircuit(
            name=self.name,
            source_version=-1,
            inputs=self.inputs,
            outputs=self.outputs,
            net_names=self.net_names,
            n_inputs=self.n_inputs,
            gate_names=self.gate_names,
            gate_cells=self.gate_cells,
            gate_fanins=self.gate_fanins,
            gate_delays=tuple(delays),
            gate_programs=self.gate_programs,
            levels=self.levels,
            output_index=self.output_index,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CompiledCircuit({self.name!r}, {self.n_inputs} in, "
            f"{len(self.output_index)} out, {self.n_gates} gates, "
            f"depth {max(self.levels, default=0)})"
        )


def _lower(circuit: Circuit) -> CompiledCircuit:
    order = circuit.topo_order()
    inputs = circuit.inputs
    n_inputs = len(inputs)
    net_names = (*inputs, *order)
    net_index = {n: i for i, n in enumerate(net_names)}

    gates = circuit.gates
    cells: list[Cell] = []
    fanins: list[tuple[int, ...]] = []
    delays: list[tuple[int, ...]] = []
    programs: list[tuple[tuple[int, int], ...]] = []
    levels = [0] * len(net_names)
    for pos, name in enumerate(order):
        gate = gates[name]
        cell = gate.cell
        try:
            fi = tuple(net_index[f] for f in gate.fanins)
        except KeyError as exc:
            raise EngineError(
                f"gate {name!r} reads undefined net {exc.args[0]!r}"
            ) from None
        cells.append(cell)
        fanins.append(fi)
        delays.append(gate.pin_delays())
        pin_index = {pin: i for i, pin in enumerate(cell.inputs)}
        programs.append(compile_program(cell.expr, pin_index))
        levels[n_inputs + pos] = 1 + max((levels[f] for f in fi), default=-1)

    try:
        output_index = tuple(net_index[n] for n in circuit.outputs)
    except KeyError as exc:
        raise EngineError(f"output {exc.args[0]!r} is not driven") from None

    return CompiledCircuit(
        name=circuit.name,
        source_version=circuit.version,
        inputs=inputs,
        outputs=circuit.outputs,
        net_names=net_names,
        n_inputs=n_inputs,
        gate_names=tuple(order),
        gate_cells=tuple(cells),
        gate_fanins=tuple(fanins),
        gate_delays=tuple(delays),
        gate_programs=tuple(programs),
        levels=tuple(levels),
        output_index=output_index,
    )


def compile_circuit(circuit: "Circuit | CompiledCircuit") -> CompiledCircuit:
    """Lower ``circuit`` to a :class:`CompiledCircuit`, with caching.

    Passing an already-compiled circuit is a no-op, so every evaluation
    entry point can accept either form.  The cache is invalidated by
    :attr:`Circuit.version`, so structural edits trigger a fresh lowering.

    The backend environment variable is validated here — the common entry
    of every evaluation path — so a misspelt ``REPRO_ENGINE_BACKEND``
    raises immediately instead of being silently ignored by paths (single
    patterns, waveforms) that never consult a word backend.
    """
    validated_backend_name()
    if isinstance(circuit, CompiledCircuit):
        return circuit
    cached: CompiledCircuit | None = getattr(circuit, "_compiled_ir", None)
    if cached is not None and cached.source_version == circuit.version:
        _COMPILE_HITS.add()
        return cached
    _COMPILE_MISSES.add()
    with _TRACER.span("engine.compile", circuit=circuit.name) as span:
        compiled = _lower(circuit)
        span.set(gates=compiled.n_gates, nets=compiled.n_nets)
    _IR_GATES.set(compiled.n_gates)
    _IR_NETS.set(compiled.n_nets)
    circuit._compiled_ir = compiled
    return compiled


def pack_input_words(
    compiled: CompiledCircuit, words: Mapping[str, int], width: int
) -> list[int]:
    """Input words keyed by net name -> engine-ordered list, masked to width."""
    mask = (1 << width) - 1
    row = []
    for net in compiled.inputs:
        try:
            row.append(words[net] & mask)
        except KeyError:
            raise SimulationError(f"word vector missing input {net!r}") from None
    return row


def patterns_to_words(
    compiled: CompiledCircuit, patterns: Iterable[Mapping[str, bool]]
) -> tuple[list[int], int]:
    """Pack ``{net: bool}`` patterns into engine-ordered input words."""
    row = [0] * compiled.n_inputs
    width = 0
    for pattern in patterns:
        for i, net in enumerate(compiled.inputs):
            if pattern[net]:
                row[i] |= 1 << width
        width += 1
    return row, width

"""Speed-path characteristic function (SPCF) algorithms.

Three algorithms, matching Table 1 of the paper:

* :func:`spcf_nodebased` — node-based over-approximation of [22],
* :func:`spcf_pathbased` — exact path-based extension of [22],
* :func:`spcf_shortpath` — the paper's exact short-path-based method (Eqn. 1).

:func:`compare_algorithms` runs all three on a shared context and reports
counts and runtimes, reproducing one row of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netlist.circuit import Circuit
from repro.spcf import nodebased, pathbased, shortpath
from repro.spcf.result import SpcfResult
from repro.spcf.timedfunc import SpcfContext, expr_to_function

spcf_shortpath = shortpath.compute_spcf
spcf_pathbased = pathbased.compute_spcf
spcf_nodebased = nodebased.compute_spcf


@dataclass(frozen=True)
class AlgorithmComparison:
    """One row of Table 1: counts and runtimes of the three algorithms."""

    circuit_name: str
    num_inputs: int
    num_outputs: int
    area: float
    node_based_count: int
    node_based_runtime: float
    path_based_count: int
    path_based_runtime: float
    short_path_count: int
    short_path_runtime: float

    @property
    def over_approximation_factor(self) -> float:
        """How loose the node-based count is versus the exact count."""
        if self.short_path_count == 0:
            return 1.0
        return self.node_based_count / self.short_path_count


def compare_algorithms(
    circuit: Circuit, threshold: float = 0.9, target: int | None = None
) -> AlgorithmComparison:
    """Run all three SPCF algorithms on ``circuit`` (fresh context each, so
    runtimes are comparable) and return the Table-1 style row."""
    node = spcf_nodebased(circuit, threshold=threshold, target=target)
    path = spcf_pathbased(circuit, threshold=threshold, target=target)
    short = spcf_shortpath(circuit, threshold=threshold, target=target)
    return AlgorithmComparison(
        circuit_name=circuit.name,
        num_inputs=len(circuit.inputs),
        num_outputs=len(circuit.outputs),
        area=circuit.area(),
        node_based_count=node.count(),
        node_based_runtime=node.runtime_seconds,
        path_based_count=path.count(),
        path_based_runtime=path.runtime_seconds,
        short_path_count=short.count(),
        short_path_runtime=short.runtime_seconds,
    )


__all__ = [
    "SpcfContext",
    "SpcfResult",
    "expr_to_function",
    "spcf_shortpath",
    "spcf_pathbased",
    "spcf_nodebased",
    "AlgorithmComparison",
    "compare_algorithms",
]

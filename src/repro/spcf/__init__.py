"""Speed-path characteristic function (SPCF) algorithms.

Three algorithms, matching Table 1 of the paper:

* :func:`spcf_nodebased` — node-based over-approximation of [22],
* :func:`spcf_pathbased` — exact path-based extension of [22],
* :func:`spcf_shortpath` — the paper's exact short-path-based method (Eqn. 1).

:func:`compare_algorithms` runs all three on a shared context and reports
counts and runtimes, reproducing one row of Table 1.

All three accept a ``certificates=`` set from
:func:`repro.analysis.precert.precertify`: statically discharged
``(node, t)`` obligations skip their S0/S1 BDD builds with bit-identical
results.  :func:`spcf_multiroot` compiles a whole threshold sweep over one
shared context/manager, so the computed table carries sub-results across
targets.

:func:`monte_carlo_accuracy` cross-checks a computed SPCF against the exact
floating-mode stabilization oracle on a random pattern batch (driven by the
compiled circuit engine), classifying each sampled pattern as a true/false
positive/negative — the sampled counterpart of the exhaustive accuracy
tests, usable on circuits far too wide to enumerate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine import compile_circuit
from repro.netlist.circuit import Circuit
from repro.sim.logicsim import random_patterns
from repro.sim.timingsim import stabilization_times
from repro.spcf import nodebased, pathbased, shortpath
from repro.spcf.multiroot import compute_multi as spcf_multiroot
from repro.spcf.parallel import spcf_parallel, spcf_parallel_multi
from repro.spcf.result import SpcfResult
from repro.spcf.timedfunc import SpcfContext, expr_to_function

spcf_shortpath = shortpath.compute_spcf
spcf_pathbased = pathbased.compute_spcf
spcf_nodebased = nodebased.compute_spcf


@dataclass(frozen=True)
class AlgorithmComparison:
    """One row of Table 1: counts and runtimes of the three algorithms."""

    circuit_name: str
    num_inputs: int
    num_outputs: int
    area: float
    node_based_count: int
    node_based_runtime: float
    path_based_count: int
    path_based_runtime: float
    short_path_count: int
    short_path_runtime: float

    @property
    def over_approximation_factor(self) -> float:
        """How loose the node-based count is versus the exact count."""
        if self.short_path_count == 0:
            return 1.0
        return self.node_based_count / self.short_path_count


def compare_algorithms(
    circuit: Circuit, threshold: float = 0.9, target: int | None = None
) -> AlgorithmComparison:
    """Run all three SPCF algorithms on ``circuit`` (fresh context each, so
    runtimes are comparable) and return the Table-1 style row."""
    node = spcf_nodebased(circuit, threshold=threshold, target=target)
    path = spcf_pathbased(circuit, threshold=threshold, target=target)
    short = spcf_shortpath(circuit, threshold=threshold, target=target)
    return AlgorithmComparison(
        circuit_name=circuit.name,
        num_inputs=len(circuit.inputs),
        num_outputs=len(circuit.outputs),
        area=circuit.area(),
        node_based_count=node.count(),
        node_based_runtime=node.runtime_seconds,
        path_based_count=path.count(),
        path_based_runtime=path.runtime_seconds,
        short_path_count=short.count(),
        short_path_runtime=short.runtime_seconds,
    )


@dataclass(frozen=True)
class SampledAccuracy:
    """Monte-Carlo agreement between an SPCF and the stabilization oracle.

    Per sampled pattern and critical output: *positive* means the SPCF
    claims the pattern activates a speed-path; *true* means the exact
    floating-mode oracle agrees.  Exact algorithms must show zero false
    positives and zero false negatives; the node-based over-approximation
    may show false positives but never false negatives.
    """

    num_patterns: int
    checks: int
    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def is_exact_on_sample(self) -> bool:
        return self.false_positives == 0 and self.false_negatives == 0

    @property
    def is_superset_on_sample(self) -> bool:
        """No false negatives (sound over-approximation on the sample)."""
        return self.false_negatives == 0


def monte_carlo_accuracy(
    result: SpcfResult, num_patterns: int = 256, seed: int = 0
) -> SampledAccuracy:
    """Cross-check ``result`` against the exact oracle on random patterns.

    For each sampled pattern the compiled engine computes the exact
    stabilization time of every critical output; membership in the
    per-output SPCF BDD is compared against ``time > target``.
    """
    ctx = result.context
    compiled = compile_circuit(ctx.circuit)
    target = result.target
    checks = tp = fp = fn = 0
    for pattern in random_patterns(compiled.inputs, num_patterns, seed=seed):
        times = stabilization_times(compiled, pattern)
        for y, sigma in result.per_output.items():
            claimed = sigma.evaluate(pattern)
            actual = times[y] > target
            checks += 1
            if claimed and actual:
                tp += 1
            elif claimed and not actual:
                fp += 1
            elif actual and not claimed:
                fn += 1
    return SampledAccuracy(
        num_patterns=num_patterns,
        checks=checks,
        true_positives=tp,
        false_positives=fp,
        false_negatives=fn,
    )


__all__ = [
    "SpcfContext",
    "SpcfResult",
    "expr_to_function",
    "spcf_shortpath",
    "spcf_pathbased",
    "spcf_nodebased",
    "spcf_multiroot",
    "spcf_parallel",
    "spcf_parallel_multi",
    "AlgorithmComparison",
    "compare_algorithms",
    "SampledAccuracy",
    "monte_carlo_accuracy",
]

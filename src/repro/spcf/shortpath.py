"""The paper's proposed short-path-based SPCF algorithm (Sec. 3, Eqn. 1).

The insight of the paper is that the complement of the SPCF — the set of
patterns for which the output stabilizes *on time* — decomposes through the
prime implicants of each gate:

.. math::

    \\overline{\\Sigma}_z(\\Delta_z) = \\bigvee_{p \\in P}
        \\Big( \\bigwedge_{l \\in L(p)} \\overline{\\Sigma}_l(\\Delta_z - \\delta_l) \\Big)

so only *short-path* (stabilized-by-``t``) functions need to be propagated,
one recursion per ``(node, t)`` pair, with aggressive pruning by the
latest-arrival and earliest-stabilization bounds.  This is exact and, per
Table 1 of the paper, as fast as the over-approximating node-based method.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from repro.bdd.manager import Function
from repro.errors import SpcfError
from repro.netlist.circuit import Circuit
from repro.spcf import _obs
from repro.spcf.result import SpcfResult
from repro.spcf.timedfunc import SpcfContext

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.analysis.precert.certificate import CertificateSet


def compute_spcf(
    circuit: Circuit,
    threshold: float = 0.9,
    target: int | None = None,
    context: SpcfContext | None = None,
    certificates: "CertificateSet | None" = None,
) -> SpcfResult:
    """Exact SPCF of every critical output via the short-path recursion.

    With ``certificates`` (see :mod:`repro.analysis.precert`), discharged
    ``(node, t)`` obligations skip their S0/S1 builds inside
    :meth:`SpcfContext.stable`; results stay bit-identical.
    """
    if context is not None and certificates is not None:
        raise SpcfError(
            "pass certificates either directly or via the context, not both"
        )
    start = time.perf_counter()
    with _obs.TRACER.span(
        "spcf.compute", algorithm="shortpath", circuit=circuit.name
    ) as span:
        ctx = context or SpcfContext(
            circuit, threshold=threshold, target=target, certificates=certificates
        )
        per_output: dict[str, Function] = {}
        for y in ctx.critical_outputs:
            with _obs.TRACER.span(
                "spcf.output", algorithm="shortpath", output=y
            ) as out_span:
                per_output[y] = ctx.late(y, ctx.target)
                if _obs.METER.enabled:
                    _obs.note_output(out_span, "shortpath", per_output[y])
        if _obs.METER.enabled:
            _obs.note_pass(span, ctx, len(per_output))
    runtime = time.perf_counter() - start
    return SpcfResult(
        algorithm="short-path-based (proposed)",
        context=ctx,
        per_output=per_output,
        runtime_seconds=runtime,
    )

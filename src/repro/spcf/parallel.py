"""Parallel per-output SPCF on the :mod:`repro.exec` substrate.

The short-path SPCF of one primary output is an independent computation:
the Eqn. 1 recursion touches only that output's fanin cone.  This module
fans the per-output roots of a (possibly multi-target) compile across an
executor — persistent worker subprocesses by default — and merges the
results deterministically:

* Each task ships the **faithful circuit JSON** (gate order, pin delays,
  aging scales — see :mod:`repro.netlist.codec`), the certificate set (if
  any), and the output name; the worker rebuilds the exact context and
  returns each ``Sigma_y(t)`` as a serialized BDD DAG.
* Workers cache contexts per ``(circuit, certificates, targets)``, so one
  worker computing several outputs of the same circuit shares its manager
  and ``stable()`` memo across them, like the serial multi-root compile.
* The parent rebuilds every returned function inside its own manager via
  reduced ``ite`` composition — ROBDD canonicity over the shared variable
  order (``circuit.inputs`` registration order) makes the merged result
  **bit-identical** to a serial :func:`~repro.spcf.multiroot.compute_multi`
  run, in any completion order.
* An output whose worker wedges (BDD blowup, hang) or dies is killed,
  retried, and finally quarantined by the executor; the run still returns,
  reporting that output under :attr:`SpcfResult.incomplete` instead of
  failing the sweep.

``jobs`` follows the repo-wide convention: ``0`` means inline (compute in
this process, still through the executor path), ``N >= 1`` a pool of N
persistent workers, ``None`` the machine default.  Negative values are
rejected eagerly.
"""

from __future__ import annotations

import hashlib
import time
from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Mapping, Sequence

from repro.bdd.manager import BddManager, Function
from repro.bdd.serialize import function_from_json, function_to_json
from repro.netlist.circuit import Circuit
from repro.netlist.codec import circuit_from_json, circuit_to_json
from repro.spcf import _obs
from repro.spcf.multiroot import resolve_sweep_targets
from repro.spcf.result import SpcfResult
from repro.spcf.timedfunc import SpcfContext

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.analysis.precert.certificate import CertificateSet
    from repro.exec import Executor

_ALGORITHM = "short-path-based (proposed, parallel)"


# --------------------------------------------------------------- worker side

#: Per-process context cache: a pooled worker serving several outputs of
#: the same compile rebuilds the circuit/certificates/timing once and
#: shares the BDD manager and ``stable()`` memo across its tasks.
_CTX_CACHE: "OrderedDict[str, SpcfContext]" = OrderedDict()
_CTX_CACHE_LIMIT = 4


def _context_key(payload: Mapping[str, Any]) -> str:
    import json

    blob = json.dumps(
        [
            payload.get("circuit"),
            payload.get("certificates"),
            payload.get("threshold"),
            payload.get("target"),
        ],
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def _cached_context(payload: Mapping[str, Any]) -> SpcfContext:
    # The parent computes the key once per fan-out and ships it as a hint;
    # hashing the (large) circuit + certificate documents per task would
    # rival the compute for small outputs.
    key = payload.get("context_key") or _context_key(payload)
    ctx = _CTX_CACHE.get(key)
    if ctx is not None:
        _CTX_CACHE.move_to_end(key)
        return ctx
    circuit = circuit_from_json(payload["circuit"])
    certificates: "CertificateSet | None" = None
    if payload.get("certificates") is not None:
        from repro.analysis.precert.certificate import CertificateSet

        # The set was produced (and checked) by the parent's precertify in
        # the same trust domain as the rest of the payload; structural
        # validation still applies, adversarial re-verification belongs to
        # the audit plane.
        certificates = CertificateSet.from_dict(
            payload["certificates"], verify=False
        )
    ctx = SpcfContext(
        circuit,
        threshold=float(payload.get("threshold", 0.9)),
        target=int(payload["target"]),
        certificates=certificates,
    )
    _CTX_CACHE[key] = ctx
    while len(_CTX_CACHE) > _CTX_CACHE_LIMIT:
        _CTX_CACHE.popitem(last=False)
    return ctx


def run_output_task(payload: dict[str, Any]) -> dict[str, Any]:
    """Registry runner for ``spcf.output``: one output, every target.

    Returns ``{"output": y, "functions": {str(target): <bdd doc>}}`` with
    an entry for each target the output is actually late against.
    """
    ctx = _cached_context(payload)
    output = str(payload["output"])
    arrival = ctx.report.arrival
    functions: dict[str, dict[str, Any]] = {}
    for raw in payload["targets"]:
        target = int(raw)
        if arrival[output] > target:
            functions[str(target)] = function_to_json(ctx.late(output, target))
    return {"output": output, "functions": functions}


def output_task_span(
    payload: dict[str, Any], attempt: int
) -> tuple[str, str, Mapping[str, Any]]:
    """Worker-span factory for ``spcf.output`` tasks."""
    return (
        "spcf",
        "spcf.output_task",
        {
            "output": payload.get("output"),
            "targets": len(payload.get("targets", ())),
            "attempt": attempt,
        },
    )


# --------------------------------------------------------------- parent side


def _resolve_jobs(jobs: int | None) -> int:
    from repro.exec import default_worker_count, validated_jobs

    if jobs is None:
        return default_worker_count()
    return validated_jobs(jobs)


def _fan_out(
    circuit: Circuit,
    ctx: SpcfContext,
    resolved: Sequence[int],
    certificates: "CertificateSet | None",
    threshold: float,
    jobs: int | None,
    executor: "Executor | None",
    task_timeout: float,
) -> tuple[dict[int, dict[str, Function]], dict[str, str]]:
    """Dispatch one task per critical output; merge deterministically.

    Returns ``(per_target_functions, incomplete)`` where the inner dicts
    follow ``circuit.outputs`` declaration order — the same order the
    serial algorithms produce.
    """
    from repro.exec import Task, make_executor

    outputs = ctx.critical_outputs_at(resolved[0])
    circuit_doc = circuit_to_json(circuit)
    certs_doc = certificates.to_dict() if certificates is not None else None
    context_key = _context_key(
        {
            "circuit": circuit_doc,
            "certificates": certs_doc,
            "threshold": threshold,
            "target": int(resolved[-1]),
        }
    )
    tasks = [
        Task(
            kind="spcf.output",
            payload={
                "circuit": circuit_doc,
                "certificates": certs_doc,
                "threshold": threshold,
                "target": int(resolved[-1]),
                "targets": [int(t) for t in resolved],
                "output": y,
                "context_key": context_key,
            },
            key=y,
            span_name="spcf.output_dispatch",
            span_category="spcf",
            span_attrs={"output": y, "targets": len(resolved)},
            attempt_attrs={"output": y},
        )
        for y in outputs
    ]
    owned = executor is None
    ex = executor if executor is not None else make_executor(
        _resolve_jobs(jobs), task_timeout=task_timeout
    )
    try:
        report = ex.run(tasks)
    finally:
        if owned:
            ex.close()

    per_target: dict[int, dict[str, Function]] = {
        int(t): {} for t in resolved
    }
    incomplete: dict[str, str] = {}
    for y in outputs:
        result = report.results.get(y)
        if result is None or not result.ok:
            if result is None:
                reason = report.breaker_reason or "not scheduled"
            elif result.outcome == "stopped":
                reason = report.breaker_reason or "stopped"
            else:
                reason = result.error or "quarantined"
            incomplete[y] = reason
            continue
        functions = result.value["functions"]
        for target in per_target:
            doc = functions.get(str(target))
            if doc is not None:
                per_target[target][y] = function_from_json(ctx.manager, doc)
    return per_target, incomplete


def spcf_parallel(
    circuit: Circuit,
    threshold: float = 0.9,
    target: int | None = None,
    certificates: "CertificateSet | None" = None,
    manager: BddManager | None = None,
    jobs: int | None = None,
    executor: "Executor | None" = None,
    task_timeout: float = 300.0,
) -> SpcfResult:
    """Exact short-path SPCF with per-output fan-out across an executor.

    Bit-identical to :func:`repro.spcf.spcf_shortpath` on the same
    circuit/threshold/target (equal BDD nodes in the returned context's
    manager); outputs whose worker had to be quarantined are reported in
    :attr:`SpcfResult.incomplete` rather than raising.  Pass ``executor``
    to reuse a warm worker pool across calls.
    """
    started = time.perf_counter()
    with _obs.TRACER.span(
        "spcf.parallel", algorithm="shortpath", circuit=circuit.name
    ) as span:
        ctx = SpcfContext(
            circuit,
            threshold=threshold,
            target=target,
            manager=manager,
            certificates=certificates,
        )
        per_target, incomplete = _fan_out(
            circuit, ctx, [ctx.target], certificates, threshold,
            jobs, executor, task_timeout,
        )
        per_output = per_target[ctx.target]
        if _obs.METER.enabled:
            for y, fn in per_output.items():
                _obs.note_output(span, "shortpath", fn)
            _obs.note_pass(span, ctx, len(per_output))
            span.set(incomplete=len(incomplete))
    return SpcfResult(
        algorithm=_ALGORITHM,
        context=ctx,
        per_output=per_output,
        runtime_seconds=time.perf_counter() - started,
        incomplete=incomplete,
    )


def spcf_parallel_multi(
    circuit: Circuit,
    targets: Sequence[int] | None = None,
    thresholds: Sequence[float] = (0.9,),
    certificates: "CertificateSet | None" = None,
    manager: BddManager | None = None,
    jobs: int | None = None,
    executor: "Executor | None" = None,
    task_timeout: float = 300.0,
) -> dict[int, SpcfResult]:
    """Parallel analogue of :func:`repro.spcf.multiroot.compute_multi`.

    One task per critical output covers *all* targets (the worker shares
    its ``stable()`` memo across them, like the serial multi-root
    compile); results are merged per target in ascending order and are
    bit-identical to the serial sweep.
    """
    started = time.perf_counter()
    with _obs.TRACER.span(
        "spcf.parallel_multi", algorithm="shortpath", circuit=circuit.name
    ) as span:
        context_threshold = max(thresholds) if targets is None else 0.9
        ctx = SpcfContext(
            circuit,
            threshold=context_threshold,
            target=None if targets is None else max(int(t) for t in targets),
            manager=manager,
            certificates=certificates,
        )
        resolved = resolve_sweep_targets(ctx, targets, thresholds)
        per_target, incomplete = _fan_out(
            circuit, ctx, resolved, certificates, context_threshold,
            jobs, executor, task_timeout,
        )
        wall = time.perf_counter() - started
        results: dict[int, SpcfResult] = {}
        for tgt in resolved:
            at_target = set(ctx.critical_outputs_at(tgt))
            results[tgt] = SpcfResult(
                algorithm=_ALGORITHM,
                context=ctx,
                per_output=per_target[tgt],
                runtime_seconds=wall,
                target_override=tgt,
                incomplete={
                    y: msg for y, msg in incomplete.items() if y in at_target
                },
            )
        if _obs.METER.enabled:
            _obs.note_pass(
                span, ctx, sum(len(r.per_output) for r in results.values())
            )
            span.set(targets=len(resolved), incomplete=len(incomplete))
    return results


__all__ = [
    "spcf_parallel",
    "spcf_parallel_multi",
    "run_output_task",
    "output_task_span",
]

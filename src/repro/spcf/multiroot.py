"""Multi-root SPCF compile: several thresholds through one shared context.

A threshold sweep (``Delta_y`` at 50%..90% of the critical delay) re-asks the
same circuit the same kind of question with different root obligations
``(y, target)``.  Compiling them against **one** :class:`SpcfContext` instead
of one context per threshold shares everything the per-threshold runs would
redundantly rebuild:

* the BDD manager — every node, the unique table and the op caches survive
  across roots, so a sub-cone reached from two thresholds is hashed once;
* the lazily-built global-function map ``F[net]``;
* the ``stable(net, t)`` memo — distinct roots converge onto identical
  ``(node, t)`` sub-obligations after a few fanin steps (delays subtract the
  same way from every root), so later targets mostly replay memo hits;
* the certificate set (:mod:`repro.analysis.precert`), whose discharged
  obligations skip their S0/S1 builds entirely.

Targets are compiled in ascending order, so the smallest target — whose
sub-obligations are the deepest — warms the memo for every later one.

Results are bit-identical to per-threshold :func:`repro.spcf.shortpath.
compute_spcf` runs: the recursion is the same, only sharing differs, and
ROBDD canonicity makes equal functions the same node.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Sequence

from repro.bdd.manager import BddManager, Function
from repro.errors import SpcfError
from repro.netlist.circuit import Circuit
from repro.spcf import _obs
from repro.spcf.result import SpcfResult
from repro.spcf.timedfunc import SpcfContext
from repro.sta.timing import threshold_target

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.analysis.precert.certificate import CertificateSet


def resolve_sweep_targets(
    context: SpcfContext,
    targets: Sequence[int] | None,
    thresholds: Sequence[float],
) -> list[int]:
    """Deduplicated, ascending target list for a multi-root compile."""
    if targets is None:
        critical_delay = context.report.critical_delay
        resolved = {threshold_target(critical_delay, f) for f in thresholds}
    else:
        resolved = {int(t) for t in targets}
    if not resolved:
        raise SpcfError("multi-root SPCF needs at least one target")
    return sorted(resolved)


def compute_multi(
    circuit: Circuit,
    targets: Sequence[int] | None = None,
    thresholds: Sequence[float] = (0.9,),
    certificates: "CertificateSet | None" = None,
    manager: BddManager | None = None,
) -> dict[int, SpcfResult]:
    """Exact short-path SPCF at every target, multi-root over one context.

    Returns one :class:`SpcfResult` per resolved target (its
    :attr:`~SpcfResult.target` reads the per-result override, not the shared
    context's default).  Pass either explicit integer ``targets`` or
    ``thresholds`` as fractions of the critical delay.
    """
    with _obs.TRACER.span(
        "spcf.multiroot", algorithm="shortpath", circuit=circuit.name
    ) as span:
        ctx = SpcfContext(
            circuit,
            threshold=max(thresholds) if targets is None else 0.9,
            target=None if targets is None else max(int(t) for t in targets),
            manager=manager,
            certificates=certificates,
        )
        resolved = resolve_sweep_targets(ctx, targets, thresholds)
        results: dict[int, SpcfResult] = {}
        for tgt in resolved:
            root_start = time.perf_counter()
            per_output: dict[str, Function] = {}
            for y in ctx.critical_outputs_at(tgt):
                with _obs.TRACER.span(
                    "spcf.output", algorithm="shortpath", output=y, target=tgt
                ) as out_span:
                    per_output[y] = ctx.late(y, tgt)
                    if _obs.METER.enabled:
                        _obs.note_output(out_span, "shortpath", per_output[y])
            results[tgt] = SpcfResult(
                algorithm="short-path-based (proposed, multi-root)",
                context=ctx,
                per_output=per_output,
                runtime_seconds=time.perf_counter() - root_start,
                target_override=tgt,
            )
        if _obs.METER.enabled:
            _obs.note_pass(
                span, ctx, sum(len(r.per_output) for r in results.values())
            )
            span.set(targets=len(resolved))
    return results


__all__ = ["compute_multi", "resolve_sweep_targets"]

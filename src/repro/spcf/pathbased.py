"""Path-based exact SPCF (the extension of [22] described in Sec. 3).

This computes the *long-path activation function* of every node directly:
a pattern leaves node ``z`` late at time ``t`` (with final value ``v``) iff
**every** prime implicant of the ``v``-set fails to be on time — i.e. for
each prime, some literal is either inconsistent with the pattern's final
values or itself late:

.. math::

    \\Lambda_z^v(t) = F_z^v \\wedge \\bigwedge_{p \\in P_v}
        \\neg \\Big( \\bigwedge_{l \\in L(p)}
            \\big(F_l \\equiv v_l\\big) \\wedge \\neg\\Lambda_l(t-\\delta_l) \\Big)

This product-over-primes expansion is the symbolic analogue of enumerating
sensitizable long paths; it computes the same exact set as the short-path
recursion of :mod:`repro.spcf.shortpath` (property-tested), but without the
arrival-bound pruning and with the more expensive conjunction-of-negations
form — reproducing the accuracy/runtime trade-off of Table 1.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Sequence

from repro.bdd.manager import Function, conjunction
from repro.errors import SpcfError
from repro.logic.cube import Cube
from repro.netlist.circuit import Circuit
from repro.spcf import _obs
from repro.spcf.result import SpcfResult
from repro.spcf.timedfunc import SpcfContext

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.analysis.precert.certificate import CertificateSet


def _late(ctx: SpcfContext, net: str, t: int) -> Function:
    """Patterns for which ``net`` has not stabilized by ``t`` (exact)."""
    mgr = ctx.manager
    if t >= ctx.report.critical_delay:
        # Nothing in the circuit can be late past the critical delay; this
        # coarse global bound is the only cutoff the path-based method uses.
        return mgr.false
    if ctx.circuit.is_input(net):
        return mgr.true if t < 0 else mgr.false
    certs = ctx.certificates
    if certs is not None:
        cert = certs.lookup(net, t)
        if cert is not None and cert.verdict == "discharged":
            # Bit-identical shortcut: the certified fact ("every pattern on
            # time" / "no pattern can settle") pins the exact late set to a
            # BDD terminal, the same node the recursion would reach.
            if _obs.METER.enabled:
                _obs.OBLIGATIONS_SKIPPED.add(1, algorithm="pathbased")
            if cert.kind == "on-time":
                return mgr.false
            if cert.kind == "all-late":
                return mgr.true
    key = (net, t)
    cached = ctx._late_memo.get(key)
    if cached is not None:
        return cached
    gate = ctx.circuit.gates[net]
    cell = gate.cell
    pin_to_fanin = dict(zip(cell.inputs, gate.fanins))
    pin_to_delay = dict(zip(cell.inputs, gate.pin_delays()))
    on_primes, off_primes = cell.primes()
    f_out = ctx.functions[net]

    def late_for_value(primes: Sequence[Cube], value_fn: Function) -> Function:
        factors: list[Function] = []
        for prime in primes:
            lits: list[Function] = []
            for pin, polarity in prime.to_dict(cell.inputs).items():
                fanin = pin_to_fanin[pin]
                f_in = ctx.functions[fanin]
                consistent = f_in if polarity else ~f_in
                on_time = consistent & ~_late(ctx, fanin, t - pin_to_delay[pin])
                lits.append(on_time)
            factors.append(~conjunction(ctx.manager, lits))
        return value_fn & conjunction(ctx.manager, factors)

    result = late_for_value(on_primes, f_out) | late_for_value(off_primes, ~f_out)
    ctx._late_memo[key] = result
    return result


def late_activation(ctx: SpcfContext, net: str, t: int) -> Function:
    """Exact late-activation set of ``(net, t)`` — public recursion entry.

    Used by the precert audit (ABS009) as the independent cross-check plane:
    on a context constructed *without* certificates, the only cutoffs are the
    global critical delay and ``t < 0`` at primary inputs, so the result never
    depends on the per-net arrival / min-stable arrays a certificate cites.
    """
    return _late(ctx, net, t)


def compute_spcf(
    circuit: Circuit,
    threshold: float = 0.9,
    target: int | None = None,
    context: SpcfContext | None = None,
    certificates: "CertificateSet | None" = None,
) -> SpcfResult:
    """Exact SPCF via the path-based long-path activation recursion.

    With ``certificates``, discharged obligations resolve to BDD terminals
    inside :func:`_late`; results stay bit-identical.
    """
    if context is not None and certificates is not None:
        raise SpcfError(
            "pass certificates either directly or via the context, not both"
        )
    start = time.perf_counter()
    with _obs.TRACER.span(
        "spcf.compute", algorithm="pathbased", circuit=circuit.name
    ) as span:
        ctx = context or SpcfContext(
            circuit, threshold=threshold, target=target, certificates=certificates
        )
        per_output: dict[str, Function] = {}
        for y in ctx.critical_outputs:
            with _obs.TRACER.span(
                "spcf.output", algorithm="pathbased", output=y
            ) as out_span:
                per_output[y] = _late(ctx, y, ctx.target)
                if _obs.METER.enabled:
                    _obs.note_output(out_span, "pathbased", per_output[y])
                    out_span.set(memo_entries=len(ctx._late_memo))
        if _obs.METER.enabled:
            _obs.note_pass(span, ctx, len(per_output))
    runtime = time.perf_counter() - start
    return SpcfResult(
        algorithm="path-based extension of [22] (exact)",
        context=ctx,
        per_output=per_output,
        runtime_seconds=runtime,
    )

"""Shared infrastructure for SPCF computation: timed characteristic functions.

:class:`SpcfContext` bundles, for one circuit and one speed-path threshold:

* a BDD manager with one variable per primary input (in topological PI order),
* the *global function* ``F[net]`` of every net over the primary inputs,
* the STA report (latest arrivals, prime-based earliest-stabilization bounds,
  required times for the target ``Delta_y``).

On top of it, :meth:`SpcfContext.stable` implements the paper's Eqn. 1 — the
pair of timed characteristic functions

* ``S0[net](t)`` — patterns whose final value at ``net`` is 0 *and* has
  stabilized by time ``t``,
* ``S1[net](t)`` — dito for final value 1,

computed recursively through the prime implicants of each cell's on-set and
off-set, with memoization on ``(net, t)`` and two pruning rules:

* ``t >= arrival[net]`` — every pattern has stabilized: ``(¬F, F)``,
* ``t < min_stable[net]`` — no pattern can have stabilized: ``(0, 0)``.

The *short-path-based* algorithm (the paper's contribution) is exactly this
recursion; the *path-based* and *node-based* algorithms reuse the context but
walk the circuit differently.
"""

from __future__ import annotations

from typing import Mapping

from repro.bdd.manager import BddManager, Function, conjunction, disjunction
from repro.errors import SpcfError
from repro.logic.expr import BoolExpr
from repro.netlist.circuit import Circuit
from repro.sta.timing import TimingReport, analyze


def expr_to_function(
    expr: BoolExpr, env: Mapping[str, Function], mgr: BddManager
) -> Function:
    """Evaluate a Boolean expression with BDD functions bound to its names."""
    if expr.op == "var":
        try:
            return env[expr.name]
        except KeyError:
            raise SpcfError(f"expression name {expr.name!r} unbound") from None
    if expr.op == "const":
        return mgr.true if expr.value else mgr.false
    if expr.op == "not":
        return ~expr_to_function(expr.args[0], env, mgr)
    fns = [expr_to_function(a, env, mgr) for a in expr.args]
    acc = fns[0]
    for f in fns[1:]:
        if expr.op == "and":
            acc = acc & f
        elif expr.op == "or":
            acc = acc | f
        else:
            acc = acc ^ f
    return acc


class SpcfContext:
    """Circuit + threshold context shared by the three SPCF algorithms."""

    def __init__(
        self,
        circuit: Circuit,
        threshold: float = 0.9,
        target: int | None = None,
        manager: BddManager | None = None,
    ) -> None:
        circuit.validate()
        self.circuit = circuit
        self.report: TimingReport = analyze(circuit, target=target, threshold=threshold)
        self.target = self.report.target
        self.manager = manager or BddManager(circuit.inputs)
        for net in circuit.inputs:
            if net not in self.manager.var_names:
                self.manager.add_var(net)
        self.functions: dict[str, Function] = {}
        self._build_global_functions()
        # Memo tables for the timed characteristic functions.
        self._stable_memo: dict[tuple[str, int], tuple[Function, Function]] = {}
        self._late_memo: dict[tuple[str, int], Function] = {}

    # --------------------------------------------------------- global functions

    def _build_global_functions(self) -> None:
        mgr = self.manager
        for net in self.circuit.inputs:
            self.functions[net] = mgr.var(net)
        for name in self.circuit.topo_order():
            gate = self.circuit.gates[name]
            env = {
                pin: self.functions[f]
                for pin, f in zip(gate.cell.inputs, gate.fanins)
            }
            self.functions[name] = expr_to_function(gate.cell.expr, env, mgr)

    # ------------------------------------------------------------- Eqn. 1 core

    def stable(self, net: str, t: int) -> tuple[Function, Function]:
        """``(S0, S1)`` — stabilized-by-``t`` characteristic functions."""
        mgr = self.manager
        arrival = self.report.arrival
        min_stable = self.report.min_stable
        if t >= arrival[net]:
            f = self.functions[net]
            return (~f, f)
        if t < min_stable[net]:
            return (mgr.false, mgr.false)
        key = (net, t)
        cached = self._stable_memo.get(key)
        if cached is not None:
            return cached
        gate = self.circuit.gates[net]  # PIs never reach here (arrival == 0)
        cell = gate.cell
        delays = gate.pin_delays()
        pin_to_fanin = dict(zip(cell.inputs, gate.fanins))
        pin_to_delay = dict(zip(cell.inputs, delays))
        on_primes, off_primes = cell.primes()

        def prime_term(prime) -> Function:
            terms = []
            for pin, polarity in prime.to_dict(cell.inputs).items():
                s0, s1 = self.stable(pin_to_fanin[pin], t - pin_to_delay[pin])
                terms.append(s1 if polarity else s0)
            return conjunction(mgr, terms)

        s1 = disjunction(mgr, [prime_term(p) for p in on_primes])
        s0 = disjunction(mgr, [prime_term(p) for p in off_primes])
        result = (s0, s1)
        self._stable_memo[key] = result
        return result

    def late(self, net: str, t: int) -> Function:
        """Patterns whose value at ``net`` has *not* stabilized by ``t``."""
        s0, s1 = self.stable(net, t)
        return ~(s0 | s1)

    # ------------------------------------------------------------- conveniences

    @property
    def critical_outputs(self) -> tuple[str, ...]:
        """Outputs where at least one speed-path terminates."""
        return self.report.critical_outputs(self.circuit)

    def count(self, fn: Function) -> int:
        """Model count of an SPCF over the circuit's primary inputs."""
        return fn.count(len(self.circuit.inputs))

"""Shared infrastructure for SPCF computation: timed characteristic functions.

:class:`SpcfContext` bundles, for one circuit and one speed-path threshold:

* a BDD manager with one variable per primary input (in topological PI order),
* the *global function* ``F[net]`` of every net over the primary inputs,
  built **lazily**: a net's BDD is composed on first access, so a query that
  discharges most of a circuit statically never pays for the cold cones,
* the STA report (latest arrivals, prime-based earliest-stabilization bounds,
  required times for the target ``Delta_y``),
* optionally, a pre-certification
  :class:`~repro.analysis.precert.certificate.CertificateSet` whose
  discharged obligations short-circuit the recursion below.

On top of it, :meth:`SpcfContext.stable` implements the paper's Eqn. 1 — the
pair of timed characteristic functions

* ``S0[net](t)`` — patterns whose final value at ``net`` is 0 *and* has
  stabilized by time ``t``,
* ``S1[net](t)`` — dito for final value 1,

computed recursively through the prime implicants of each cell's on-set and
off-set, with memoization on ``(net, t)``.  A ``(net, t)`` pair is resolved
without recursion when

* a certificate discharges it (``on-time`` -> ``(¬F, F)``, ``all-late`` ->
  ``(0, 0)``) — the pre-certified fast path, or
* the inline bounds fire: ``t >= arrival[net]`` / ``t < min_stable[net]`` —
  the same facts the certificates carry, so results are bit-identical with
  certificates on or off (ROBDD canonicity: equal functions over one
  variable order are the same node).

Constant-net certificates (all-X ternary proofs) substitute the *global
function* map only: under floating-mode semantics a constant-function net
can still settle late (the initial state is arbitrary), so ``stable()``
never consults them.

The *short-path-based* algorithm (the paper's contribution) is exactly this
recursion; the *path-based* and *node-based* algorithms reuse the context but
walk the circuit differently.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from repro.bdd.manager import BddManager, Function, conjunction, disjunction
from repro.errors import SpcfError
from repro.logic.cube import Cube
from repro.logic.expr import BoolExpr
from repro.netlist.circuit import Circuit
from repro.spcf import _obs
from repro.sta.timing import TimingReport, analyze

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.analysis.precert.certificate import CertificateSet


def expr_to_function(
    expr: BoolExpr, env: Mapping[str, Function], mgr: BddManager
) -> Function:
    """Evaluate a Boolean expression with BDD functions bound to its names."""
    if expr.op == "var":
        try:
            return env[expr.name]
        except KeyError:
            raise SpcfError(f"expression name {expr.name!r} unbound") from None
    if expr.op == "const":
        return mgr.true if expr.value else mgr.false
    if expr.op == "not":
        return ~expr_to_function(expr.args[0], env, mgr)
    fns = [expr_to_function(a, env, mgr) for a in expr.args]
    acc = fns[0]
    for f in fns[1:]:
        if expr.op == "and":
            acc = acc & f
        elif expr.op == "or":
            acc = acc | f
        else:
            acc = acc ^ f
    return acc


class _LazyFunctions(dict[str, Function]):
    """Global-function map building each net's BDD on first access.

    Key-compatible with the eager dict of earlier revisions (plain
    ``ctx.functions[net]`` everywhere); certified-constant nets resolve to a
    BDD terminal without touching their fanin cones.
    """

    def __init__(self, ctx: "SpcfContext") -> None:
        super().__init__()
        self._ctx = ctx

    def ensure(self, net: str) -> Function:
        """Force the net's function to be built (eager-construction helper)."""
        return self[net]

    def __missing__(self, net: str) -> Function:
        ctx = self._ctx
        certs = ctx.certificates
        if certs is not None:
            value = certs.constant_value(net)
            if value is not None:
                fn = ctx.manager.true if value else ctx.manager.false
                self[net] = fn
                return fn
        try:
            gate = ctx.circuit.gates[net]
        except KeyError:
            raise SpcfError(
                f"no net {net!r} in circuit {ctx.circuit.name!r}"
            ) from None
        env = {pin: self[f] for pin, f in zip(gate.cell.inputs, gate.fanins)}
        fn = expr_to_function(gate.cell.expr, env, ctx.manager)
        self[net] = fn
        return fn


class SpcfContext:
    """Circuit + threshold context shared by the three SPCF algorithms."""

    def __init__(
        self,
        circuit: Circuit,
        threshold: float = 0.9,
        target: int | None = None,
        manager: BddManager | None = None,
        certificates: "CertificateSet | None" = None,
        eager: bool = False,
    ) -> None:
        circuit.validate()
        if certificates is not None and not certificates.matches(circuit):
            raise SpcfError(
                "certificate set was produced for a different circuit "
                f"(fingerprint mismatch on {circuit.name!r}); refusing to "
                "consult it"
            )
        self.circuit = circuit
        self.certificates = certificates
        self.report: TimingReport = analyze(circuit, target=target, threshold=threshold)
        self.target = self.report.target
        self.manager = manager or BddManager(circuit.inputs)
        for net in circuit.inputs:
            if net not in self.manager.var_names:
                self.manager.add_var(net)
        functions: _LazyFunctions = _LazyFunctions(self)
        for net in circuit.inputs:
            functions[net] = self.manager.var(net)
        self.functions: dict[str, Function] = functions
        if eager:
            # Build every cone up front (the pre-lazy behaviour; kept for
            # benchmarking the baseline and for callers that want the
            # whole-circuit BDD cost paid at construction time).
            for name in circuit.topo_order():
                functions.ensure(name)
        # Memo tables for the timed characteristic functions.
        self._stable_memo: dict[tuple[str, int], tuple[Function, Function]] = {}
        self._late_memo: dict[tuple[str, int], Function] = {}

    # ------------------------------------------------------------- Eqn. 1 core

    def stable(self, net: str, t: int) -> tuple[Function, Function]:
        """``(S0, S1)`` — stabilized-by-``t`` characteristic functions."""
        mgr = self.manager
        certs = self.certificates
        if certs is not None:
            cert = certs.lookup(net, t)
            if cert is not None and cert.verdict == "discharged":
                if _obs.METER.enabled:
                    _obs.OBLIGATIONS_SKIPPED.add(1, algorithm="shortpath")
                if cert.kind == "on-time":
                    f = self.functions[net]
                    return (~f, f)
                if cert.kind == "all-late":
                    return (mgr.false, mgr.false)
        arrival = self.report.arrival
        min_stable = self.report.min_stable
        if t >= arrival[net]:
            f = self.functions[net]
            return (~f, f)
        if t < min_stable[net]:
            return (mgr.false, mgr.false)
        key = (net, t)
        cached = self._stable_memo.get(key)
        if cached is not None:
            return cached
        gate = self.circuit.gates[net]  # PIs never reach here (arrival == 0)
        cell = gate.cell
        delays = gate.pin_delays()
        pin_to_fanin = dict(zip(cell.inputs, gate.fanins))
        pin_to_delay = dict(zip(cell.inputs, delays))
        on_primes, off_primes = cell.primes()

        def prime_term(prime: Cube) -> Function:
            terms = []
            for pin, polarity in prime.to_dict(cell.inputs).items():
                s0, s1 = self.stable(pin_to_fanin[pin], t - pin_to_delay[pin])
                terms.append(s1 if polarity else s0)
            return conjunction(mgr, terms)

        s1 = disjunction(mgr, [prime_term(p) for p in on_primes])
        s0 = disjunction(mgr, [prime_term(p) for p in off_primes])
        result = (s0, s1)
        self._stable_memo[key] = result
        return result

    def late(self, net: str, t: int) -> Function:
        """Patterns whose value at ``net`` has *not* stabilized by ``t``."""
        s0, s1 = self.stable(net, t)
        return ~(s0 | s1)

    # ------------------------------------------------------------- conveniences

    @property
    def critical_outputs(self) -> tuple[str, ...]:
        """Outputs where at least one speed-path terminates."""
        return self.report.critical_outputs(self.circuit)

    def critical_outputs_at(self, target: int) -> tuple[str, ...]:
        """Outputs whose latest arrival exceeds an arbitrary target."""
        arrival = self.report.arrival
        return tuple(
            net for net in self.circuit.outputs if arrival[net] > target
        )

    def count(self, fn: Function) -> int:
        """Model count of an SPCF over the circuit's primary inputs."""
        return fn.count(len(self.circuit.inputs))

"""Node-based over-approximating SPCF (the algorithm of [22], Sec. 3).

Gates are marked critical *statically* — before the topological pass — from
arrival/required-time slack, and a single pass propagates a late-activation
function:

.. math::

    A_g = \\Big( \\bigvee_{i \\in \\mathrm{crit}(g)} A_i \\Big)
          \\wedge \\neg \\mathrm{earlydet}_g

where ``earlydet_g`` is the disjunction, over prime implicants ``p`` of the
gate whose literals all come from *non-critical* fanins, of the condition
"``p`` is satisfied by the pattern's final values".  Intuitively: the output
can only be late if some statically-critical fanin can be late and the output
value is not already determined by the always-on-time fanins.

Because a gate is marked critical even when it lies on a long path along only
one of its fanouts, and because value/timing consistency across levels is not
tracked, ``A_y`` is a **superset** of the exact SPCF (proved in DESIGN.md
§7 invariant 2 and property-tested); the over-approximation factor mirrors
the "Over-approximation" column of Table 1.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING

from repro.bdd.manager import Function, conjunction, disjunction
from repro.errors import SpcfError
from repro.netlist.circuit import Circuit
from repro.spcf import _obs
from repro.spcf.result import SpcfResult
from repro.spcf.timedfunc import SpcfContext

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.analysis.precert.certificate import CertificateSet


def compute_spcf(
    circuit: Circuit,
    threshold: float = 0.9,
    target: int | None = None,
    context: SpcfContext | None = None,
    certificates: "CertificateSet | None" = None,
) -> SpcfResult:
    """Over-approximate SPCF via the statically-marked node-based pass.

    Certificates are consulted transparently through the context's
    global-function map (certified-constant nets resolve to BDD terminals
    without building their cones); the computed superset is unchanged.
    """
    if context is not None and certificates is not None:
        raise SpcfError(
            "pass certificates either directly or via the context, not both"
        )
    start = time.perf_counter()
    with _obs.TRACER.span(
        "spcf.compute", algorithm="nodebased", circuit=circuit.name
    ) as span:
        ctx = context or SpcfContext(
            circuit, threshold=threshold, target=target, certificates=certificates
        )
        mgr = ctx.manager
        report = ctx.report

        critical: set[str] = {
            net for net in report.arrival if report.slack(net) < 0
        }
        activation: dict[str, Function] = {}
        for net in circuit.inputs:
            if net in critical:
                activation[net] = mgr.true

        for name in circuit.topo_order():
            if name not in critical:
                continue
            gate = circuit.gates[name]
            cell = gate.cell
            pin_to_fanin = dict(zip(cell.inputs, gate.fanins))
            from_critical = [
                activation[f]
                for f in gate.fanins
                if f in critical and f in activation
            ]
            if not from_critical:
                # Statically critical but no critical fanin can actually be
                # late (e.g. required times pushed negative at a PI that is
                # on time).
                continue
            on_primes, off_primes = cell.primes()
            early_dets: list[Function] = []
            for prime in (*on_primes, *off_primes):
                lits = prime.to_dict(cell.inputs)
                if any(pin_to_fanin[pin] in critical for pin in lits):
                    continue
                consistent = [
                    ctx.functions[pin_to_fanin[pin]]
                    if polarity
                    else ~ctx.functions[pin_to_fanin[pin]]
                    for pin, polarity in lits.items()
                ]
                early_dets.append(conjunction(mgr, consistent))
            activation[name] = disjunction(mgr, from_critical) & ~disjunction(
                mgr, early_dets
            )

        per_output = {
            y: activation.get(y, mgr.false) for y in ctx.critical_outputs
        }
        if _obs.METER.enabled:
            for function in per_output.values():
                _obs.OUTPUTS.add(1, algorithm="nodebased")
                _obs.OUTPUT_NODES.observe(
                    function.dag_size(), algorithm="nodebased"
                )
            span.set(critical_nodes=len(critical))
            _obs.note_pass(span, ctx, len(per_output))
    runtime = time.perf_counter() - start
    return SpcfResult(
        algorithm="node-based [22] (over-approximation)",
        context=ctx,
        per_output=per_output,
        runtime_seconds=runtime,
    )

"""SPCF result container shared by the three algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field
from repro.bdd.manager import Function, disjunction
from repro.spcf.timedfunc import SpcfContext


@dataclass
class SpcfResult:
    """The speed-path characteristic function(s) of one circuit.

    ``per_output`` maps each critical primary output ``y`` to
    ``Sigma_y(Delta_y)`` as a BDD over the primary inputs; ``union`` is the
    set of patterns that sensitize *any* speed-path (the paper's "critical
    patterns ... over all critical primary outputs").
    """

    algorithm: str
    context: SpcfContext
    per_output: dict[str, Function]
    runtime_seconds: float = 0.0
    #: Multi-threshold compiles (see :func:`repro.spcf.multiroot.compute_multi`)
    #: share one context across several targets; each per-target result
    #: records its own ``Delta_y`` here instead of the context's default.
    target_override: int | None = None
    #: Critical outputs whose SPCF could *not* be computed, mapped to the
    #: failure message.  Serial algorithms always leave this empty; the
    #: parallel driver (:func:`repro.spcf.parallel.spcf_parallel`) records
    #: outputs whose worker was quarantined (wedged, crashed, BDD blowup)
    #: here instead of failing the whole run.
    incomplete: dict[str, str] = field(default_factory=dict)

    @property
    def union(self) -> Function:
        return disjunction(
            self.context.manager, list(self.per_output.values())
        )

    @property
    def target(self) -> int:
        if self.target_override is not None:
            return self.target_override
        return self.context.target

    @property
    def critical_outputs(self) -> tuple[str, ...]:
        return tuple(self.per_output)

    def count(self, output: str | None = None) -> int:
        """Exact number of critical patterns (for one output or the union)."""
        fn = self.union if output is None else self.per_output[output]
        return self.context.count(fn)

    def counts_by_output(self) -> dict[str, int]:
        return {y: self.context.count(f) for y, f in self.per_output.items()}

    def is_empty(self) -> bool:
        return all(f.is_false for f in self.per_output.values())

    @property
    def is_complete(self) -> bool:
        """True iff every critical output's SPCF was actually computed."""
        return not self.incomplete

"""Shared observability handles for the three SPCF algorithms.

One module owns the tracer and the instruments so the per-algorithm
modules register each metric exactly once and agree on names/labels
(``algorithm=shortpath|pathbased|nodebased``).

Also the publication point for the pre-certification counters
(``repro_spcf_obligations_*``) and the BDD manager's exact computed-table
hit/miss counters: managers accumulate exact per-op counts while counting
is enabled, and :func:`note_pass` publishes the *delta* since the last
publication so multi-pass runs on one shared manager sum correctly.
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING

from repro import obs

if TYPE_CHECKING:  # pragma: no cover - type-only imports
    from repro.bdd.manager import BddManager, Function
    from repro.obs.tracing import Span
    from repro.spcf.timedfunc import SpcfContext

TRACER = obs.get_tracer("spcf")
METER = obs.get_meter()

OUTPUTS = METER.counter(
    "repro_spcf_outputs_total", "critical outputs processed by SPCF passes"
)
OUTPUT_NODES = METER.histogram(
    "repro_spcf_output_bdd_nodes",
    "BDD dag size of each per-output SPCF",
    obs.BATCH_BUCKETS,
)
BDD_NODES = METER.gauge(
    "repro_bdd_manager_nodes",
    "high-water BDD manager node count observed after an SPCF pass",
)
OBLIGATIONS = METER.counter(
    "repro_spcf_obligations_total",
    "(node, t) timing obligations classified by pre-certification, by verdict",
)
OBLIGATIONS_SKIPPED = METER.counter(
    "repro_spcf_obligations_skipped_total",
    "S0/S1 BDD builds skipped because a certificate discharged the obligation",
)
COMPUTED_HITS = METER.counter(
    "repro_bdd_computed_hits_total",
    "exact BDD computed-table (op cache) hits, by operation",
)
COMPUTED_MISSES = METER.counter(
    "repro_bdd_computed_misses_total",
    "exact BDD computed-table (op cache) misses, by operation",
)

#: Last-published computed-table counts per manager, so repeated
#: :func:`note_pass` calls on one shared manager publish monotone deltas.
_PUBLISHED: "weakref.WeakKeyDictionary[BddManager, dict[str, tuple[int, int]]]"
_PUBLISHED = weakref.WeakKeyDictionary()


def publish_computed_table(manager: "BddManager") -> None:
    """Publish the manager's exact hit/miss counters as obs counter deltas."""
    stats = manager.stats()
    table = stats.get("computed_table")
    if not isinstance(table, dict):
        return  # counting disabled on this manager
    last = _PUBLISHED.setdefault(manager, {})
    for op, counts in table.items():
        hits, misses = int(counts["hits"]), int(counts["misses"])
        prev_hits, prev_misses = last.get(op, (0, 0))
        if hits > prev_hits:
            COMPUTED_HITS.add(hits - prev_hits, op=op)
        if misses > prev_misses:
            COMPUTED_MISSES.add(misses - prev_misses, op=op)
        last[op] = (hits, misses)


def note_output(span: "Span", algorithm: str, function: "Function") -> None:
    """Record the per-output span attrs + counters (enabled path only)."""
    size = function.dag_size()
    span.set(bdd_nodes=size)
    OUTPUTS.add(1, algorithm=algorithm)
    OUTPUT_NODES.observe(size, algorithm=algorithm)


def note_pass(span: "Span", ctx: "SpcfContext", n_outputs: int) -> None:
    """Record whole-pass attrs: manager growth and memo/cache stats."""
    stats = ctx.manager.stats()
    BDD_NODES.set_max(stats["nodes"])
    publish_computed_table(ctx.manager)
    span.set(
        outputs=n_outputs,
        bdd_nodes=stats["nodes"],
        unique_entries=stats["unique_entries"],
        target=ctx.target,
    )

"""Shared observability handles for the three SPCF algorithms.

One module owns the tracer and the instruments so the per-algorithm
modules register each metric exactly once and agree on names/labels
(``algorithm=shortpath|pathbased|nodebased``).
"""

from __future__ import annotations

from repro import obs

TRACER = obs.get_tracer("spcf")
METER = obs.get_meter()

OUTPUTS = METER.counter(
    "repro_spcf_outputs_total", "critical outputs processed by SPCF passes"
)
OUTPUT_NODES = METER.histogram(
    "repro_spcf_output_bdd_nodes",
    "BDD dag size of each per-output SPCF",
    obs.BATCH_BUCKETS,
)
BDD_NODES = METER.gauge(
    "repro_bdd_manager_nodes",
    "high-water BDD manager node count observed after an SPCF pass",
)


def note_output(span, algorithm: str, function) -> None:
    """Record the per-output span attrs + counters (enabled path only)."""
    size = function.dag_size()
    span.set(bdd_nodes=size)
    OUTPUTS.add(1, algorithm=algorithm)
    OUTPUT_NODES.observe(size, algorithm=algorithm)


def note_pass(span, ctx, n_outputs: int) -> None:
    """Record whole-pass attrs: manager growth and memo/cache stats."""
    stats = ctx.manager.stats()
    BDD_NODES.set_max(stats["nodes"])
    span.set(
        outputs=n_outputs,
        bdd_nodes=stats["nodes"],
        unique_entries=stats["unique_entries"],
        target=ctx.target,
    )

"""Flight recorder: a bounded ring of recent telemetry, for post-mortems.

A :class:`FlightRecorder` keeps the last N spans (including *open* span
markers for work still in flight), structured log records, and metric
deltas in memory.  It costs one deque append per entry — cheap enough to
leave on for a whole campaign — and is **dumped** on the events an
operator actually investigates: a quarantined shard, a circuit-breaker
trip, or a worker crash.

The crash case is the interesting one: a SIGKILLed process cannot dump
at death, so queue workers write their ring to
``telemetry/<worker>.flight.json`` (atomic rename) on every heartbeat
flush.  Whatever the last flush captured — the open-span marker, log
lines, and metric deltas of the task that was in flight, all joined on
one correlation id — survives the kill, and the coordinator harvests the
file into the checkpoint's ``.flight/`` directory.

Entries are tagged dicts::

    {"kind": "span",       ...span record fields...}
    {"kind": "span-open",  "name", "cat", "ts_us", "id", "corr"?}
    {"kind": "log",        ...log record fields...}
    {"kind": "metrics",    "ts", "seq", "delta": <snapshot-format delta>}

The recorder is wired into the tracing collector and the log buffer as a
``sink`` attribute checked only on the enabled path, so the disabled-mode
overhead gate is untouched.
"""

from __future__ import annotations

import json
import os
import threading
import time
import uuid
from collections import deque
from pathlib import Path
from typing import Any

FLIGHT_SCHEMA = 1

#: Default ring capacity (entries, all kinds pooled).
FLIGHT_LIMIT = 256


class FlightRecorder:
    """Bounded ring of recent spans / logs / metric deltas."""

    def __init__(self, worker: str = "", limit: int = FLIGHT_LIMIT,
                 clock=time.time):
        self.worker = worker
        self._clock = clock
        self._lock = threading.Lock()
        self._ring: deque[dict] = deque(maxlen=limit)

    # -- sink protocol (called from tracing / log / timeseries) -----------

    def record_span(self, record: dict) -> None:
        entry = dict(record)
        entry["kind"] = "span"  # the tag wins over any payload field
        with self._lock:
            self._ring.append(entry)

    def record_span_open(self, name: str, cat: str, ts_us: int,
                         span_id: int | None, corr: str | None) -> None:
        entry: dict[str, Any] = {
            "kind": "span-open", "name": name, "cat": cat,
            "ts_us": ts_us, "id": span_id,
        }
        if corr is not None:
            entry["corr"] = corr
        with self._lock:
            self._ring.append(entry)

    def record_log(self, record: dict) -> None:
        entry = dict(record)
        entry["kind"] = "log"  # the tag wins over any payload field
        with self._lock:
            self._ring.append(entry)

    def record_metrics(self, seq: int, delta: dict) -> None:
        with self._lock:
            self._ring.append({
                "kind": "metrics",
                "ts": round(self._clock(), 6),
                "seq": seq,
                "delta": delta,
            })

    # -- dumping ----------------------------------------------------------

    def entries(self) -> list[dict]:
        with self._lock:
            return [dict(e) for e in self._ring]

    def dump(self, trigger: str = "manual") -> dict:
        """The ring as a self-describing, JSON-serialisable document."""
        return {
            "schema": FLIGHT_SCHEMA,
            "worker": self.worker,
            "trigger": trigger,
            "dumped_at": round(self._clock(), 6),
            "entries": self.entries(),
        }

    def dump_to(self, path: str | os.PathLike, trigger: str = "manual"
                ) -> Path:
        """Write the dump atomically (temp + rename); returns the path."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        doc = self.dump(trigger)
        tmp = target.parent / f".{target.name}.{uuid.uuid4().hex}.tmp"
        tmp.write_text(
            json.dumps(doc, sort_keys=True) + "\n", encoding="utf-8"
        )
        os.replace(tmp, target)
        return target

    def reset(self) -> None:
        with self._lock:
            self._ring.clear()


def load_flight(path: str | os.PathLike) -> dict:
    """Read a flight dump back; raises ``ValueError`` on malformed files."""
    doc = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(doc, dict) or doc.get("schema") != FLIGHT_SCHEMA:
        raise ValueError(f"{path} is not a flight-recorder dump")
    if not isinstance(doc.get("entries"), list):
        raise ValueError(f"{path}: flight dump has no entries list")
    return doc


__all__ = [
    "FLIGHT_LIMIT",
    "FLIGHT_SCHEMA",
    "FlightRecorder",
    "load_flight",
]

"""Structured JSONL logging with trace correlation.

Log records are plain dicts — ``{"ts", "level", "logger", "event",
"corr", ...fields}`` — collected in a bounded in-process buffer and
(optionally) mirrored into an installed flight recorder, so a crashed
worker's recent log lines survive in its flight dump.

The **correlation id** is the join key of the whole telemetry plane: the
queue worker sets it to the task fingerprint for the duration of one
claimed task, the stdio worker sets it from the request's ``corr`` field,
and both spans (via :class:`~repro.obs.tracing.TraceCollector`) and log
records pick it up automatically — so a quarantined shard's logs, spans,
and metric deltas all carry the same id and can be joined after the
fact.  It is a :mod:`contextvars` variable, so concurrent dispatch
threads and nested tasks each see their own id.

Like every other obs surface, recording is gated on the shared enabled
flag: a disabled process pays one attribute load and one branch per
log call.
"""

from __future__ import annotations

import contextlib
import contextvars
import json
import threading
import time
from collections import deque
from typing import Any, Iterator

#: Log severities, in increasing order of loudness.
LEVELS = ("debug", "info", "warning", "error")

#: How many records the in-process buffer retains (oldest dropped first).
LOG_BUFFER_LIMIT = 4096

_CORRELATION: contextvars.ContextVar[str | None] = contextvars.ContextVar(
    "repro_obs_correlation", default=None
)


def correlation_id() -> str | None:
    """The active correlation id, or ``None`` outside any task context."""
    return _CORRELATION.get()


@contextlib.contextmanager
def correlation(cid: str | None) -> Iterator[str | None]:
    """Bind *cid* as the correlation id for the dynamic extent of the block.

    ``None`` explicitly clears the id (a worker between tasks).  Nesting
    restores the previous id on exit, so a sub-task context cannot leak
    its id into the enclosing task.
    """
    token = _CORRELATION.set(cid)
    try:
        yield cid
    finally:
        _CORRELATION.reset(token)


class LogBuffer:
    """Bounded, thread-safe buffer of structured log records."""

    def __init__(self, enabled: bool = False, limit: int = LOG_BUFFER_LIMIT,
                 clock=time.time):
        self.enabled = enabled
        self._clock = clock
        self._lock = threading.Lock()
        self._records: deque[dict] = deque(maxlen=limit)
        #: Optional mirror with a ``record_log(record)`` method — the
        #: flight recorder; checked only on the enabled path.
        self.sink = None

    def emit(self, logger: str, level: str, event: str,
             fields: dict[str, Any]) -> dict | None:
        if not self.enabled:
            return None
        record: dict[str, Any] = {
            "ts": round(self._clock(), 6),
            "level": level,
            "logger": logger,
            "event": event,
        }
        cid = _CORRELATION.get()
        if cid is not None:
            record["corr"] = cid
        record.update(fields)
        sink = self.sink
        with self._lock:
            self._records.append(record)
        if sink is not None:
            sink.record_log(record)
        return record

    def records(self) -> list[dict]:
        """Copy of the buffered records, oldest first."""
        with self._lock:
            return [dict(r) for r in self._records]

    def reset(self) -> None:
        with self._lock:
            self._records.clear()


class StructuredLogger:
    """Per-subsystem facade over the shared :class:`LogBuffer`."""

    __slots__ = ("name", "_buffer")

    def __init__(self, name: str, buffer: LogBuffer):
        self.name = name
        self._buffer = buffer

    def log(self, level: str, event: str, **fields: Any) -> dict | None:
        buffer = self._buffer
        if not buffer.enabled:
            return None
        return buffer.emit(self.name, level, event, fields)

    def debug(self, event: str, **fields: Any) -> dict | None:
        return self.log("debug", event, **fields)

    def info(self, event: str, **fields: Any) -> dict | None:
        return self.log("info", event, **fields)

    def warning(self, event: str, **fields: Any) -> dict | None:
        return self.log("warning", event, **fields)

    def error(self, event: str, **fields: Any) -> dict | None:
        return self.log("error", event, **fields)


def render_jsonl(records: list[dict]) -> str:
    """Render records as JSONL (sorted keys, one object per line)."""
    return "".join(json.dumps(r, sort_keys=True) + "\n" for r in records)


__all__ = [
    "LEVELS",
    "LOG_BUFFER_LIMIT",
    "LogBuffer",
    "StructuredLogger",
    "correlation",
    "correlation_id",
    "render_jsonl",
]

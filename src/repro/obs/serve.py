"""``repro obs serve`` — scrape-able /metrics over stdlib HTTP.

The first brick of ``repro serve`` (ROADMAP item 1): a zero-dependency
:class:`http.server.ThreadingHTTPServer` exposing

* ``/metrics`` — Prometheus text exposition (``text/plain; version=0.0.4``),
* ``/healthz`` — liveness JSON (``{"ok": true, ...}``),
* ``/snapshot.json`` — the full metrics snapshot plus the fleet digest.

Two snapshot sources cover both attachment modes:

* :class:`LiveSource` serves the *current process's* registry — embed it
  in a live coordinator and its campaign metrics are scrapeable mid-run;
* :class:`QueueDirSource` attaches **read-only** to a queue directory:
  it tails the workers' ``telemetry/*.jsonl`` streams into a
  :class:`~repro.obs.timeseries.FleetSeries`, re-accumulates the metric
  deltas, and adds ``repro_fleet_*`` gauges (task states, per-worker
  rates, ETA, straggler flags) derived from the queue scan — so an
  operator can point it at a live *or finished* campaign's queue from
  any host that mounts the directory, without touching the queue.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.export import render_prometheus
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import FleetSeries, TelemetryTail

#: Content type Prometheus scrapers expect for text exposition.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class LiveSource:
    """Serve the calling process's own observability state."""

    mode = "live"

    def __init__(self, fleet: FleetSeries | None = None,
                 remaining=None, clock=time.time):
        self._fleet = fleet
        self._remaining = remaining  # optional () -> int callable
        self._clock = clock

    def metrics_snapshot(self) -> dict:
        from repro import obs

        return obs.metrics_snapshot()

    def fleet_summary(self) -> dict | None:
        if self._fleet is None:
            return None
        remaining = self._remaining() if self._remaining is not None else None
        return self._fleet.summary(self._clock(), remaining=remaining)

    def health(self) -> dict:
        from repro import obs

        return {"ok": True, "mode": self.mode, "recording": obs.enabled()}


class QueueDirSource:
    """Read-only attachment to a work-queue directory.

    Every scrape refreshes incrementally: the telemetry tail consumes
    only new bytes, and the queue scan is the same read-only view
    ``repro campaign status`` uses.  Nothing is ever written into the
    queue.
    """

    mode = "queue-dir"

    def __init__(self, queue_dir, window: float = 30.0, clock=time.time):
        # Local import: repro.exec imports repro.obs at package level.
        from repro.exec.queuedir import WorkQueue

        self.queue = WorkQueue.open(queue_dir)
        self._tail = TelemetryTail(self.queue.root / "telemetry")
        self._fleet = FleetSeries(window=window)
        self._clock = clock
        self._lock = threading.Lock()

    def _refresh(self):
        snapshot = self.queue.scan()
        self._fleet.ingest(self._tail.new_records())
        return snapshot

    def metrics_snapshot(self) -> dict:
        with self._lock:
            scan = self._refresh()
            registry = MetricsRegistry()
            registry.merge_snapshot(self._fleet.merged_snapshot())
            now = self._clock()
            remaining = scan.todo + scan.claimed
            summary = self._fleet.summary(now, remaining=remaining)
            registry.enabled = True
            tasks = registry.gauge(
                "repro_fleet_tasks", "queue tasks by state (label: state)"
            )
            tasks.set(scan.todo, state="todo")
            tasks.set(scan.claimed, state="claimed")
            tasks.set(scan.done, state="done")
            tasks.set(scan.quarantined, state="quarantined")
            registry.gauge(
                "repro_fleet_workers", "workers that ever heartbeat"
            ).set(len(scan.workers))
            registry.gauge(
                "repro_fleet_queue_stopped", "1 once the stop marker exists"
            ).set(1 if scan.stopped else 0)
            rate = registry.gauge(
                "repro_fleet_rate_tasks_per_second",
                "trailing-window task throughput (label: worker; "
                "unlabelled = whole fleet)",
            )
            rate.set(summary["fleet"]["rate_per_second"])
            straggler = registry.gauge(
                "repro_fleet_worker_straggler",
                "1 when the worker's p90 wall exceeds 2x the fleet p90",
            )
            for worker, info in summary["workers"].items():
                rate.set(info["rate_per_second"], worker=worker)
                straggler.set(1 if info["straggler"] else 0, worker=worker)
            eta = summary["fleet"].get("eta_seconds")
            if eta is not None:
                registry.gauge(
                    "repro_fleet_eta_seconds",
                    "estimated seconds to drain the queue at current rate",
                ).set(eta)
            return registry.snapshot()

    def fleet_summary(self) -> dict | None:
        with self._lock:
            scan = self._refresh()
            return self._fleet.summary(
                self._clock(), remaining=scan.todo + scan.claimed
            )

    def health(self) -> dict:
        with self._lock:
            scan = self._refresh()
        return {
            "ok": True,
            "mode": self.mode,
            "queue": scan.root,
            "todo": scan.todo,
            "claimed": scan.claimed,
            "done": scan.done,
            "quarantined": scan.quarantined,
            "workers": len(scan.workers),
            "stopped": scan.stopped,
        }


class _ObsHandler(BaseHTTPRequestHandler):
    """Route table over the server's snapshot source."""

    server_version = "repro-obs/1"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        source = self.server.source  # type: ignore[attr-defined]
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                body = render_prometheus(source.metrics_snapshot())
                self._reply(200, PROMETHEUS_CONTENT_TYPE, body)
            elif path == "/healthz":
                self._reply_json(200, source.health())
            elif path == "/snapshot.json":
                doc = {
                    "metrics": source.metrics_snapshot(),
                    "fleet": source.fleet_summary(),
                }
                self._reply_json(200, doc)
            else:
                self._reply_json(404, {"ok": False, "error": f"no route {path}"})
        except Exception as exc:  # noqa: BLE001 - a scrape must not kill serving
            self._reply_json(
                500, {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
            )

    def _reply(self, status: int, content_type: str, body: str) -> None:
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _reply_json(self, status: int, doc: dict) -> None:
        self._reply(
            status, "application/json",
            json.dumps(doc, indent=2, sort_keys=True) + "\n",
        )

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # scrapes are high-frequency; stay quiet


class ObsServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying its snapshot source."""

    daemon_threads = True

    def __init__(self, address: tuple[str, int], source) -> None:
        super().__init__(address, _ObsHandler)
        self.source = source

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        host = self.server_address[0]
        return f"http://{host}:{self.port}"


def start_server(source, host: str = "127.0.0.1", port: int = 0
                 ) -> ObsServer:
    """Bind and start serving on a background thread; port 0 picks a free
    one (read it back from ``server.port``)."""
    server = ObsServer((host, port), source)
    thread = threading.Thread(
        target=server.serve_forever, name="repro-obs-serve", daemon=True
    )
    thread.start()
    return server


__all__ = [
    "PROMETHEUS_CONTENT_TYPE",
    "LiveSource",
    "ObsServer",
    "QueueDirSource",
    "start_server",
]

"""Metrics registry: counters, gauges, and fixed-bucket histograms.

Design constraints (see DESIGN.md §12):

* **Zero dependencies** — stdlib only.
* **Near-zero disabled overhead** — every recording method starts with a
  single attribute load and branch on ``registry.enabled``; when the
  registry is disabled the call returns before touching any lock.
* **Deterministic snapshots** — :meth:`MetricsRegistry.snapshot` emits a
  plain dict with sorted series keys, and :meth:`merge_snapshot` is
  commutative and associative (counters/histograms sum, gauges take the
  max), so per-shard snapshots from campaign workers aggregate to the
  same result regardless of completion order.

Naming convention: ``repro_<subsystem>_<name>_<unit>`` with label sets
kept small and low-cardinality (backend name, campaign mode — never a
net or shard index).
"""

from __future__ import annotations

import re
import threading

from repro.errors import ObsError

SNAPSHOT_SCHEMA = 1

_NAME_RE = re.compile(r"^repro_[a-z0-9_]+$")

#: Default latency buckets (seconds): 100 µs .. 30 s, roughly log-spaced.
TIME_BUCKETS_S = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
)

#: Default batch-size buckets (patterns per call), powers of four.
BATCH_BUCKETS = (1, 16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576)


def label_key(labels: dict) -> str:
    """Canonical series key for a label dict: ``"a=1,b=x"`` (sorted by name)."""
    if not labels:
        return ""
    for k, v in labels.items():
        if "=" in str(k) or "," in str(k) or "=" in str(v) or "," in str(v):
            raise ObsError(f"label {k!r}={v!r} may not contain '=' or ','")
    return ",".join(f"{k}={labels[k]}" for k in sorted(labels))


def parse_label_key(key: str) -> dict:
    """Inverse of :func:`label_key` (values come back as strings)."""
    if not key:
        return {}
    out = {}
    for part in key.split(","):
        name, _, value = part.partition("=")
        out[name] = value
    return out


class _Instrument:
    """Base class: name validation plus the shared series dict."""

    kind = "?"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str = ""):
        if not _NAME_RE.match(name):
            raise ObsError(
                f"metric name {name!r} violates the repro_<subsystem>_<name>_<unit> "
                "convention (lowercase, digits, underscores, 'repro_' prefix)"
            )
        self._registry = registry
        self.name = name
        self.help = help
        self._series: dict = {}


class Counter(_Instrument):
    """Monotonically increasing counter.  Merge semantics: sum."""

    kind = "counter"

    def add(self, value: int | float = 1, **labels) -> None:
        registry = self._registry
        if not registry.enabled:
            return
        if value < 0:
            raise ObsError(f"counter {self.name} cannot decrease (got {value})")
        key = label_key(labels)
        with registry._lock:
            self._series[key] = self._series.get(key, 0) + value


class Gauge(_Instrument):
    """Last-observed value.  Merge semantics: max (high-water mark)."""

    kind = "gauge"

    def set(self, value: int | float, **labels) -> None:
        registry = self._registry
        if not registry.enabled:
            return
        key = label_key(labels)
        with registry._lock:
            self._series[key] = value

    def set_max(self, value: int | float, **labels) -> None:
        """Keep the high-water mark of *value* for this series."""
        registry = self._registry
        if not registry.enabled:
            return
        key = label_key(labels)
        with registry._lock:
            prior = self._series.get(key)
            if prior is None or value > prior:
                self._series[key] = value


class Histogram(_Instrument):
    """Fixed-boundary histogram.  Merge semantics: bucket-wise sum.

    Boundaries are upper-inclusive (Prometheus ``le`` semantics); an
    implicit ``+Inf`` bucket collects the overflow.
    """

    kind = "histogram"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str = "",
        buckets: tuple = TIME_BUCKETS_S,
    ):
        super().__init__(registry, name, help)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ObsError(
                f"histogram {name} buckets must be non-empty, sorted, unique"
            )
        self.boundaries = bounds

    def observe(self, value: int | float, **labels) -> None:
        registry = self._registry
        if not registry.enabled:
            return
        key = label_key(labels)
        with registry._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = {
                    "buckets": [0] * (len(self.boundaries) + 1),
                    "sum": 0,
                    "count": 0,
                }
            series["buckets"][_bucket_index(self.boundaries, value)] += 1
            series["sum"] += value
            series["count"] += 1


def _bucket_index(boundaries: tuple, value: float) -> int:
    """Index of the ``le`` bucket for *value* (len(boundaries) == +Inf)."""
    lo, hi = 0, len(boundaries)
    while lo < hi:
        mid = (lo + hi) // 2
        if value <= boundaries[mid]:
            hi = mid
        else:
            lo = mid + 1
    return lo


class MetricsRegistry:
    """Thread-safe instrument registry with deterministic snapshot/merge."""

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._instruments: dict[str, _Instrument] = {}

    # -- instrument factories (idempotent by name) ------------------------

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: tuple = TIME_BUCKETS_S
    ) -> Histogram:
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if existing.kind != "histogram":
                    raise ObsError(
                        f"metric {name} already registered as {existing.kind}"
                    )
                return existing  # type: ignore[return-value]
            inst = Histogram(self, name, help, buckets)
            self._instruments[name] = inst
            return inst

    def _register(self, cls, name: str, help: str):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if existing.kind != cls.kind:
                    raise ObsError(
                        f"metric {name} already registered as {existing.kind}"
                    )
                return existing
            inst = cls(self, name, help)
            self._instruments[name] = inst
            return inst

    # -- snapshot / merge -------------------------------------------------

    def snapshot(self) -> dict:
        """Deterministic, JSON-serialisable view of every non-empty series."""
        with self._lock:
            metrics = {}
            for name in sorted(self._instruments):
                inst = self._instruments[name]
                if not inst._series:
                    continue
                entry = {"kind": inst.kind, "help": inst.help}
                if isinstance(inst, Histogram):
                    entry["boundaries"] = list(inst.boundaries)
                    entry["series"] = {
                        key: {
                            "buckets": list(s["buckets"]),
                            "sum": s["sum"],
                            "count": s["count"],
                        }
                        for key, s in sorted(inst._series.items())
                    }
                else:
                    entry["series"] = dict(sorted(inst._series.items()))
                metrics[name] = entry
            return {"schema": SNAPSHOT_SCHEMA, "metrics": metrics}

    def merge_snapshot(self, snap: dict) -> None:
        """Fold a snapshot into this registry (works even while disabled).

        Counters and histogram buckets sum; gauges keep the max.  The
        operation is commutative, so shard snapshots can be merged in any
        completion order and produce identical aggregates.
        """
        if not isinstance(snap, dict) or "metrics" not in snap:
            raise ObsError("malformed metrics snapshot: missing 'metrics' key")
        for name, entry in snap["metrics"].items():
            kind = entry.get("kind")
            series = entry.get("series", {})
            if kind == "counter":
                inst = self.counter(name, entry.get("help", ""))
                with self._lock:
                    for key, value in series.items():
                        inst._series[key] = inst._series.get(key, 0) + value
            elif kind == "gauge":
                inst = self.gauge(name, entry.get("help", ""))
                with self._lock:
                    for key, value in series.items():
                        prior = inst._series.get(key)
                        if prior is None or value > prior:
                            inst._series[key] = value
            elif kind == "histogram":
                bounds = tuple(entry.get("boundaries", TIME_BUCKETS_S))
                inst = self.histogram(name, entry.get("help", ""), bounds)
                if inst.boundaries != bounds:
                    raise ObsError(
                        f"histogram {name} boundary mismatch during merge"
                    )
                with self._lock:
                    for key, s in series.items():
                        mine = inst._series.get(key)
                        if mine is None:
                            mine = inst._series[key] = {
                                "buckets": [0] * (len(bounds) + 1),
                                "sum": 0,
                                "count": 0,
                            }
                        if len(s["buckets"]) != len(mine["buckets"]):
                            raise ObsError(
                                f"histogram {name} bucket-count mismatch during merge"
                            )
                        for i, b in enumerate(s["buckets"]):
                            mine["buckets"][i] += b
                        mine["sum"] += s["sum"]
                        mine["count"] += s["count"]
            else:
                raise ObsError(f"metric {name}: unknown kind {kind!r} in snapshot")

    def reset(self) -> None:
        """Clear all recorded series; registered instruments stay valid."""
        with self._lock:
            for inst in self._instruments.values():
                inst._series.clear()


def merge_snapshots(snapshots) -> dict:
    """Pure helper: merge an iterable of snapshots into a fresh snapshot."""
    registry = MetricsRegistry()
    for snap in snapshots:
        registry.merge_snapshot(snap)
    return registry.snapshot()

"""Span tracing: nested, thread-safe, cheap to disable.

A :class:`Span` measures wall time (``time.perf_counter_ns``), CPU time
(``time.thread_time_ns``), and carries an epoch-anchored start timestamp
(``time.time_ns``) so spans recorded in different processes — e.g. the
campaign runner and its subprocess workers — line up on one timeline.

Parent/child nesting is tracked per thread with a ``threading.local``
stack, so concurrent dispatcher threads each build their own span tree.
The three clock sources are injectable for deterministic golden tests.

When tracing is disabled, :meth:`Tracer.span` returns the shared
:data:`NOOP_SPAN` — entering, exiting, and ``set()`` on it are no-ops —
so an instrumented call site costs one attribute load and one branch.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time

from repro.errors import ObsError
from repro.obs.log import correlation_id

#: Fields of a serialised span record, in canonical order.
SPAN_FIELDS = (
    "name",
    "cat",
    "ts_us",
    "dur_us",
    "cpu_us",
    "pid",
    "tid",
    "id",
    "parent",
    "args",
)

#: Optional per-record fields preserved across ingest: the worker/host
#: identity a coordinator stamps onto spans it adopts from fleet workers,
#: so a multi-host Chrome trace can map identities onto distinct rows.
SPAN_IDENTITY_FIELDS = ("worker", "host")


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def set(self, **attrs) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class Span:
    """A live span; use as a context manager.  Finishing records it."""

    __slots__ = (
        "_collector",
        "name",
        "cat",
        "args",
        "parent",
        "id",
        "_ts_us",
        "_t0_perf",
        "_t0_cpu",
    )

    def __init__(self, collector: "TraceCollector", cat: str, name: str, args: dict):
        self._collector = collector
        self.cat = cat
        self.name = name
        self.args = args
        self.parent = None
        self.id = None
        self._ts_us = 0
        self._t0_perf = 0
        self._t0_cpu = 0

    def set(self, **attrs) -> None:
        """Attach attributes to the span (last write per key wins)."""
        self.args.update(attrs)

    def __enter__(self):
        self._collector._enter(self)
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is not None:
            self.args.setdefault("error", exc_type.__name__)
        self._collector._exit(self)
        return False


class TraceCollector:
    """Accumulates finished span records; optionally streams JSONL."""

    def __init__(
        self,
        enabled: bool = False,
        wall_ns=time.time_ns,
        perf_ns=time.perf_counter_ns,
        cpu_ns=time.thread_time_ns,
        pid: int | None = None,
    ):
        self.enabled = enabled
        self._wall_ns = wall_ns
        self._perf_ns = perf_ns
        self._cpu_ns = cpu_ns
        self._pid = pid if pid is not None else os.getpid()
        self._lock = threading.Lock()
        self._records: list[dict] = []
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._jsonl = None
        #: Optional flight recorder fed span-open markers and finished
        #: records; checked only on the enabled path (spans exist only
        #: while recording), so disabled overhead is untouched.
        self.sink = None

    # -- span lifecycle ---------------------------------------------------

    def start_span(
        self, cat: str, name: str, attrs: dict, parent_id: int | None = None
    ) -> Span:
        span = Span(self, cat, name, attrs)
        if parent_id is not None:
            span.parent = parent_id
        return span

    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _enter(self, span: Span) -> None:
        stack = self._stack()
        if span.parent is None:  # explicit parent (cross-thread) wins
            span.parent = stack[-1].id if stack else None
        span.id = next(self._ids)
        stack.append(span)
        span._ts_us = self._wall_ns() // 1000
        span._t0_perf = self._perf_ns()
        span._t0_cpu = self._cpu_ns()
        # Stamp the active correlation id (task fingerprint) so spans,
        # logs, and metric deltas of one task join on one key.
        corr = correlation_id()
        if corr is not None:
            span.args.setdefault("corr", corr)
        sink = self.sink
        if sink is not None:
            sink.record_span_open(span.name, span.cat, span._ts_us,
                                  span.id, corr)

    def _exit(self, span: Span) -> None:
        dur_us = (self._perf_ns() - span._t0_perf) // 1000
        cpu_us = (self._cpu_ns() - span._t0_cpu) // 1000
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # unbalanced exit: drop up to and including this span
            while stack:
                if stack.pop() is span:
                    break
        record = {
            "name": span.name,
            "cat": span.cat,
            "ts_us": span._ts_us,
            "dur_us": dur_us,
            "cpu_us": cpu_us,
            "pid": self._pid,
            "tid": threading.get_ident(),
            "id": span.id,
            "parent": span.parent,
            "args": span.args,
        }
        with self._lock:
            self._records.append(record)
            if self._jsonl is not None:
                self._jsonl.write(json.dumps(record, sort_keys=True) + "\n")
                self._jsonl.flush()
        sink = self.sink
        if sink is not None:
            sink.record_span(record)

    # -- record access ----------------------------------------------------

    def records(self) -> list[dict]:
        """Copy of all finished span records, in completion order."""
        with self._lock:
            return [dict(r) for r in self._records]

    def ingest(self, records) -> None:
        """Adopt span records produced elsewhere (e.g. a worker process).

        Foreign ``id``/``parent`` pairs are remapped into this collector's
        id space so cross-process parents stay consistent.
        """
        remap: dict = {}
        adopted = []
        for rec in records:
            if not isinstance(rec, dict) or "name" not in rec or "ts_us" not in rec:
                raise ObsError("malformed span record during ingest")
            new = {field: rec.get(field) for field in SPAN_FIELDS}
            for field in SPAN_IDENTITY_FIELDS:
                if rec.get(field) is not None:
                    new[field] = rec[field]
            old_id = rec.get("id")
            new_id = next(self._ids)
            if old_id is not None:
                remap[old_id] = new_id
            new["id"] = new_id
            adopted.append(new)
        for new in adopted:
            if new["parent"] is not None:
                new["parent"] = remap.get(new["parent"])
            if new.get("args") is None:
                new["args"] = {}
        with self._lock:
            self._records.extend(adopted)
            if self._jsonl is not None:
                for new in adopted:
                    self._jsonl.write(json.dumps(new, sort_keys=True) + "\n")
                self._jsonl.flush()

    def reset(self) -> None:
        with self._lock:
            self._records.clear()
        self._local = threading.local()

    # -- streaming sink ---------------------------------------------------

    def set_jsonl(self, path: str | None) -> None:
        """Stream every finished span to *path* as one JSON line each."""
        with self._lock:
            if self._jsonl is not None:
                self._jsonl.close()
                self._jsonl = None
            if path is not None:
                self._jsonl = open(path, "w", encoding="utf-8")


class Tracer:
    """Per-subsystem facade; ``span()`` is the only call sites need."""

    __slots__ = ("cat", "_collector")

    def __init__(self, cat: str, collector: TraceCollector):
        self.cat = cat
        self._collector = collector

    def span(self, name: str, parent_id: int | None = None, **attrs):
        """Open a span.  ``parent_id`` overrides the thread-local nesting —
        needed when the logical parent lives on another thread (e.g. the
        campaign dispatcher parenting shard spans under the run span)."""
        collector = self._collector
        if not collector.enabled:
            return NOOP_SPAN
        return collector.start_span(self.cat, name, attrs, parent_id)

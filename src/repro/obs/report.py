"""Human-readable phase/latency summaries for ``repro obs report``.

Aggregates span records by ``(cat, name)`` and renders an aligned table:
call counts, total/mean/max wall time, total CPU time, and the share of
the trace's wall-clock envelope each span family accounts for.
"""

from __future__ import annotations


def summarize_trace(records: list[dict]) -> dict:
    """Aggregate span records into per-(cat, name) rows plus trace totals."""
    rows: dict[tuple, dict] = {}
    ts_min = None
    ts_max = None
    pids = set()
    for rec in records:
        key = (rec.get("cat") or "repro", rec["name"])
        row = rows.get(key)
        if row is None:
            row = rows[key] = {
                "cat": key[0],
                "name": key[1],
                "count": 0,
                "wall_us": 0,
                "cpu_us": 0,
                "max_us": 0,
            }
        dur = int(rec.get("dur_us") or 0)
        row["count"] += 1
        row["wall_us"] += dur
        row["cpu_us"] += int(rec.get("cpu_us") or 0)
        if dur > row["max_us"]:
            row["max_us"] = dur
        ts = rec.get("ts_us")
        if ts is not None:
            end = ts + dur
            ts_min = ts if ts_min is None or ts < ts_min else ts_min
            ts_max = end if ts_max is None or end > ts_max else ts_max
        if rec.get("pid") is not None:
            pids.add(rec["pid"])
    ordered = sorted(
        rows.values(), key=lambda r: (-r["wall_us"], r["cat"], r["name"])
    )
    envelope_us = (ts_max - ts_min) if ts_min is not None else 0
    return {
        "spans": len(records),
        "processes": len(pids),
        "envelope_us": envelope_us,
        "rows": ordered,
    }


def _us(value: int) -> str:
    """Format microseconds for humans: µs below 1 ms, else ms or s."""
    if value >= 10_000_000:
        return f"{value / 1e6:.2f}s"
    if value >= 1_000:
        return f"{value / 1e3:.2f}ms"
    return f"{value}us"


def render_trace_summary(records: list[dict], top: int = 0) -> str:
    """Render :func:`summarize_trace` output as an aligned text table."""
    summary = summarize_trace(records)
    lines = [
        f"spans: {summary['spans']}   processes: {summary['processes']}   "
        f"trace envelope: {_us(summary['envelope_us'])}"
    ]
    rows = summary["rows"]
    if top > 0:
        rows = rows[:top]
    if not rows:
        lines.append("(no spans)")
        return "\n".join(lines) + "\n"
    envelope = summary["envelope_us"] or 1
    header = (
        f"{'span':<34} {'count':>6} {'total':>10} {'mean':>10} "
        f"{'max':>10} {'cpu':>10} {'%env':>6}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        label = f"{row['cat']}:{row['name']}"
        if len(label) > 34:
            label = label[:31] + "..."
        mean = row["wall_us"] // row["count"] if row["count"] else 0
        share = 100.0 * row["wall_us"] / envelope
        lines.append(
            f"{label:<34} {row['count']:>6} {_us(row['wall_us']):>10} "
            f"{_us(mean):>10} {_us(row['max_us']):>10} "
            f"{_us(row['cpu_us']):>10} {share:>5.1f}%"
        )
    return "\n".join(lines) + "\n"

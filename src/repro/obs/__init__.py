"""repro.obs — zero-dependency observability: metrics, tracing, profiling.

Entry points::

    from repro import obs

    meter = obs.get_meter()                  # global MetricsRegistry
    tracer = obs.get_tracer("engine")        # per-subsystem span factory
    evals = meter.counter("repro_engine_eval_calls_total", "word-eval calls")

    with tracer.span("engine.compile", circuit="C432") as sp:
        ...
        sp.set(gates=160)

Everything is **off by default**: instruments record nothing and
``tracer.span()`` returns a shared no-op span, so instrumented hot paths
cost one attribute load and one branch (<2% on ``eval_lanes``; enforced
by ``benchmarks/bench_obs_overhead.py``).  Enable via:

* the ``REPRO_OBS`` environment variable (any value except
  ``0/false/off/no``) — also how campaign workers inherit the setting;
* CLI flags ``--trace FILE`` / ``--metrics FILE`` on any subcommand;
* :func:`configure` from code.

See DESIGN.md §12 for the span taxonomy and metric naming convention.
"""

from __future__ import annotations

import os

from repro.errors import ObsError
from repro.obs.export import (
    chrome_trace,
    load_trace,
    render_prometheus,
    validate_chrome_trace,
    write_metrics,
    write_trace,
)
from repro.obs.metrics import (
    BATCH_BUCKETS,
    TIME_BUCKETS_S,
    MetricsRegistry,
    merge_snapshots,
)
from repro.obs.report import render_trace_summary, summarize_trace
from repro.obs.tracing import NOOP_SPAN, Span, TraceCollector, Tracer

ENV_VAR = "REPRO_OBS"

_FALSY = frozenset({"", "0", "false", "off", "no"})

_METER = MetricsRegistry()
_COLLECTOR = TraceCollector()
_TRACERS: dict[str, Tracer] = {}


def get_meter() -> MetricsRegistry:
    """The process-global metrics registry (shared by all subsystems)."""
    return _METER


def get_tracer(subsystem: str) -> Tracer:
    """A tracer whose spans carry *subsystem* as their category."""
    tracer = _TRACERS.get(subsystem)
    if tracer is None:
        tracer = _TRACERS[subsystem] = Tracer(subsystem, _COLLECTOR)
    return tracer


def enabled() -> bool:
    """True when the observability layer is recording."""
    return _METER.enabled


def configure(enabled: bool | None = None, trace_jsonl: str | None = None) -> None:
    """Switch recording on/off and optionally stream spans to a JSONL file."""
    if enabled is not None:
        _METER.enabled = enabled
        _COLLECTOR.enabled = enabled
    if trace_jsonl is not None:
        _COLLECTOR.set_jsonl(trace_jsonl or None)


def reset() -> None:
    """Drop all recorded series and spans (instruments stay registered)."""
    _METER.reset()
    _COLLECTOR.reset()


def enabled_from_env(environ=os.environ) -> bool:
    """Whether ``REPRO_OBS`` asks for observability to be on."""
    return environ.get(ENV_VAR, "").strip().lower() not in _FALSY


def metrics_snapshot() -> dict:
    """Deterministic snapshot of the global registry."""
    return _METER.snapshot()


def merge_metrics(snapshot: dict) -> None:
    """Fold a foreign snapshot (e.g. from a worker) into the global registry."""
    _METER.merge_snapshot(snapshot)


def span_records() -> list[dict]:
    """All spans finished so far in this process (completion order)."""
    return _COLLECTOR.records()


def ingest_spans(records) -> None:
    """Adopt span records from another process into the global collector."""
    _COLLECTOR.ingest(records)


# Honour REPRO_OBS at import time so subprocess workers (which receive the
# variable via the campaign runner's child environment) start recording
# before any instrumented module-level code runs.
if ENV_VAR in os.environ and enabled_from_env():
    configure(enabled=True)

__all__ = [
    "ObsError",
    "MetricsRegistry",
    "TraceCollector",
    "Tracer",
    "Span",
    "NOOP_SPAN",
    "TIME_BUCKETS_S",
    "BATCH_BUCKETS",
    "ENV_VAR",
    "get_meter",
    "get_tracer",
    "enabled",
    "configure",
    "reset",
    "enabled_from_env",
    "metrics_snapshot",
    "merge_metrics",
    "span_records",
    "ingest_spans",
    "merge_snapshots",
    "render_prometheus",
    "chrome_trace",
    "validate_chrome_trace",
    "write_trace",
    "write_metrics",
    "load_trace",
    "summarize_trace",
    "render_trace_summary",
]

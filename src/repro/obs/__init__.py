"""repro.obs — zero-dependency observability: metrics, tracing, profiling.

Entry points::

    from repro import obs

    meter = obs.get_meter()                  # global MetricsRegistry
    tracer = obs.get_tracer("engine")        # per-subsystem span factory
    evals = meter.counter("repro_engine_eval_calls_total", "word-eval calls")

    with tracer.span("engine.compile", circuit="C432") as sp:
        ...
        sp.set(gates=160)

Everything is **off by default**: instruments record nothing and
``tracer.span()`` returns a shared no-op span, so instrumented hot paths
cost one attribute load and one branch (<2% on ``eval_lanes``; enforced
by ``benchmarks/bench_obs_overhead.py``).  Enable via:

* the ``REPRO_OBS`` environment variable (``1/true/on/yes``; an
  unrecognised token raises :class:`~repro.errors.ObsError` eagerly) —
  also how campaign workers inherit the setting;
* CLI flags ``--trace FILE`` / ``--metrics FILE`` on any subcommand;
* :func:`configure` from code.

See DESIGN.md §12 for the span taxonomy and metric naming convention,
and §17 for the live telemetry plane (:mod:`repro.obs.timeseries`,
:mod:`repro.obs.log`, :mod:`repro.obs.flight`, ``repro obs serve``).
"""

from __future__ import annotations

import os

from repro.errors import ObsError
from repro.obs.export import (
    chrome_trace,
    load_trace,
    render_prometheus,
    validate_chrome_trace,
    write_metrics,
    write_trace,
)
from repro.obs.flight import FlightRecorder, load_flight
from repro.obs.log import (
    LogBuffer,
    StructuredLogger,
    correlation,
    correlation_id,
)
from repro.obs.metrics import (
    BATCH_BUCKETS,
    TIME_BUCKETS_S,
    MetricsRegistry,
    merge_snapshots,
)
from repro.obs.report import render_trace_summary, summarize_trace
from repro.obs.timeseries import (
    FleetSeries,
    TelemetryTail,
    TelemetryWriter,
    snapshot_delta,
)
from repro.obs.tracing import NOOP_SPAN, Span, TraceCollector, Tracer

ENV_VAR = "REPRO_OBS"

#: Recognised settings of :data:`ENV_VAR`; anything else raises eagerly.
_FALSY = frozenset({"", "0", "false", "off", "no"})
_TRUTHY = frozenset({"1", "true", "on", "yes"})

_METER = MetricsRegistry()
_COLLECTOR = TraceCollector()
_TRACERS: dict[str, Tracer] = {}
_LOGS = LogBuffer()
_LOGGERS: dict[str, StructuredLogger] = {}
_FLIGHT: FlightRecorder | None = None


def get_meter() -> MetricsRegistry:
    """The process-global metrics registry (shared by all subsystems)."""
    return _METER


def get_tracer(subsystem: str) -> Tracer:
    """A tracer whose spans carry *subsystem* as their category."""
    tracer = _TRACERS.get(subsystem)
    if tracer is None:
        tracer = _TRACERS[subsystem] = Tracer(subsystem, _COLLECTOR)
    return tracer


def get_logger(name: str) -> StructuredLogger:
    """A structured logger writing to the shared bounded buffer."""
    logger = _LOGGERS.get(name)
    if logger is None:
        logger = _LOGGERS[name] = StructuredLogger(name, _LOGS)
    return logger


def enabled() -> bool:
    """True when the observability layer is recording."""
    return _METER.enabled


def configure(enabled: bool | None = None, trace_jsonl: str | None = None) -> None:
    """Switch recording on/off and optionally stream spans to a JSONL file."""
    if enabled is not None:
        _METER.enabled = enabled
        _COLLECTOR.enabled = enabled
        _LOGS.enabled = enabled
    if trace_jsonl is not None:
        _COLLECTOR.set_jsonl(trace_jsonl or None)


def reset() -> None:
    """Drop all recorded series, spans, and logs (instruments stay
    registered; an installed flight recorder keeps its ring)."""
    _METER.reset()
    _COLLECTOR.reset()
    _LOGS.reset()


def install_flight_recorder(recorder: FlightRecorder | None) -> FlightRecorder | None:
    """Feed spans and log records into *recorder* (``None`` uninstalls).

    Returns the recorder for chaining.  One recorder per process: the
    sink hooks are checked only on the enabled recording paths, so an
    installed-but-idle recorder costs nothing while obs is off.
    """
    global _FLIGHT
    _FLIGHT = recorder
    _COLLECTOR.sink = recorder
    _LOGS.sink = recorder
    return recorder


def flight_recorder() -> FlightRecorder | None:
    """The installed flight recorder, if any."""
    return _FLIGHT


def log_records() -> list[dict]:
    """All buffered structured log records (oldest first)."""
    return _LOGS.records()


def enabled_from_env(environ=os.environ) -> bool:
    """Whether ``REPRO_OBS`` asks for observability to be on.

    Unknown tokens raise :class:`~repro.errors.ObsError` *eagerly* — a
    mis-spelled ``REPRO_OBS=ture`` in a fleet launcher must fail the
    worker loudly at import, not silently run a campaign untraced (the
    same contract as ``$REPRO_ENGINE_BACKEND``).
    """
    raw = environ.get(ENV_VAR, "")
    token = raw.strip().lower()
    if token in _FALSY:
        return False
    if token in _TRUTHY:
        return True
    raise ObsError(
        f"unknown {ENV_VAR} setting {raw!r}; choose from "
        f"{sorted(_TRUTHY)} to enable or {sorted(_FALSY - frozenset({''}))} "
        "to disable"
    )


def metrics_snapshot() -> dict:
    """Deterministic snapshot of the global registry."""
    return _METER.snapshot()


def merge_metrics(snapshot: dict) -> None:
    """Fold a foreign snapshot (e.g. from a worker) into the global registry."""
    _METER.merge_snapshot(snapshot)


def span_records() -> list[dict]:
    """All spans finished so far in this process (completion order)."""
    return _COLLECTOR.records()


def ingest_spans(records) -> None:
    """Adopt span records from another process into the global collector."""
    _COLLECTOR.ingest(records)


# Honour REPRO_OBS at import time so subprocess workers (which receive the
# variable via the campaign runner's child environment) start recording
# before any instrumented module-level code runs.
if ENV_VAR in os.environ and enabled_from_env():
    configure(enabled=True)

__all__ = [
    "ObsError",
    "MetricsRegistry",
    "TraceCollector",
    "Tracer",
    "Span",
    "NOOP_SPAN",
    "TIME_BUCKETS_S",
    "BATCH_BUCKETS",
    "ENV_VAR",
    "get_meter",
    "get_tracer",
    "get_logger",
    "enabled",
    "configure",
    "reset",
    "enabled_from_env",
    "metrics_snapshot",
    "merge_metrics",
    "span_records",
    "ingest_spans",
    "log_records",
    "correlation",
    "correlation_id",
    "LogBuffer",
    "StructuredLogger",
    "FlightRecorder",
    "load_flight",
    "install_flight_recorder",
    "flight_recorder",
    "FleetSeries",
    "TelemetryTail",
    "TelemetryWriter",
    "snapshot_delta",
    "merge_snapshots",
    "render_prometheus",
    "chrome_trace",
    "validate_chrome_trace",
    "write_trace",
    "write_metrics",
    "load_trace",
    "summarize_trace",
    "render_trace_summary",
]

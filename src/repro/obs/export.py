"""Exporters: Prometheus text exposition, Chrome ``trace_event`` JSON, JSONL.

Both exporters are deterministic functions of their input snapshot /
record list: metric names, label keys, and series keys are emitted in
sorted order, and span records keep their completion order, so golden
tests can compare bytes.
"""

from __future__ import annotations

import json

from repro.errors import ObsError
from repro.obs.tracing import SPAN_FIELDS, SPAN_IDENTITY_FIELDS

CHROME_TRACE_SCHEMA = {
    "required_top": ("traceEvents",),
    "required_event": ("name", "ph", "pid", "tid", "ts"),
    "phases": ("X", "M"),
}


def _fmt_value(value) -> str:
    """Prometheus sample value: integers stay integral, floats use repr."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value != value:  # NaN
        return "NaN"
    if value == float(int(value)) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _fmt_labels(key: str, extra: dict | None = None) -> str:
    """Render a canonical series key (plus extras) as a Prometheus label set."""
    pairs = []
    if key:
        for part in key.split(","):
            name, _, value = part.partition("=")
            pairs.append((name, value))
    if extra:
        pairs.extend(extra.items())
    if not pairs:
        return ""
    body = ",".join(
        f'{name}="{str(value)}"' for name, value in sorted(pairs)
    )
    return "{" + body + "}"


def render_prometheus(snapshot: dict) -> str:
    """Render a metrics snapshot in Prometheus text exposition format."""
    if "metrics" not in snapshot:
        raise ObsError("malformed metrics snapshot: missing 'metrics' key")
    lines: list[str] = []
    for name in sorted(snapshot["metrics"]):
        entry = snapshot["metrics"][name]
        kind = entry["kind"]
        if entry.get("help"):
            lines.append(f"# HELP {name} {entry['help']}")
        lines.append(f"# TYPE {name} {kind}")
        series = entry.get("series", {})
        if kind in ("counter", "gauge"):
            for key in sorted(series):
                lines.append(f"{name}{_fmt_labels(key)} {_fmt_value(series[key])}")
        elif kind == "histogram":
            bounds = entry["boundaries"]
            for key in sorted(series):
                s = series[key]
                cumulative = 0
                for i, bound in enumerate(bounds):
                    cumulative += s["buckets"][i]
                    le = _fmt_value(float(bound))
                    lines.append(
                        f"{name}_bucket{_fmt_labels(key, {'le': le})} {cumulative}"
                    )
                cumulative += s["buckets"][len(bounds)]
                lines.append(
                    f"{name}_bucket{_fmt_labels(key, {'le': '+Inf'})} {cumulative}"
                )
                lines.append(f"{name}_sum{_fmt_labels(key)} {_fmt_value(s['sum'])}")
                lines.append(f"{name}_count{_fmt_labels(key)} {s['count']}")
        else:
            raise ObsError(f"metric {name}: unknown kind {kind!r}")
    return "\n".join(lines) + "\n" if lines else ""


def _identity_label(worker, host) -> str:
    """Perfetto row name for a fleet identity."""
    if worker is not None and host is not None:
        return f"{worker} @ {host}"
    return str(worker if worker is not None else host)


def chrome_trace(records: list[dict]) -> dict:
    """Convert span records to a Chrome ``trace_event`` JSON object.

    Spans become complete events (``ph: "X"``, microsecond ``ts``/``dur``)
    and each distinct pid contributes ``process_name``/``thread_name``
    metadata events so Perfetto labels the tracks.

    Records carrying fleet identity (``worker``/``host``, stamped by a
    coordinator on spans adopted from queue workers) are mapped onto a
    **synthetic pid per identity** — pids from different hosts collide,
    so the real pid cannot be the row key on a multi-host timeline.  The
    identity becomes the ``process_name``, each original ``(pid, tid)``
    pair becomes a named thread row, and the identity fields are kept in
    ``args`` so :func:`load_trace` round-trips them.  Traces without
    identity fields are byte-identical to the single-process format.
    """
    # Synthetic pids for identity rows start above every real pid in the
    # trace so the two namespaces cannot collide.
    identity_pids: dict[tuple, int] = {}
    max_pid = 0
    for rec in records:
        worker, host = rec.get("worker"), rec.get("host")
        if worker is not None or host is not None:
            identity_pids.setdefault((worker, host), 0)
        max_pid = max(max_pid, rec["pid"])
    for i, ident in enumerate(identity_pids):
        identity_pids[ident] = max_pid + 1 + i
    identity_tids: dict[tuple, dict] = {}

    events = []
    seen_pids: dict[int, str] = {}
    seen_tids: dict[tuple, str] = {}
    for rec in records:
        worker, host = rec.get("worker"), rec.get("host")
        args = dict(rec.get("args") or {})
        if worker is not None or host is not None:
            ident = (worker, host)
            pid = identity_pids[ident]
            rows = identity_tids.setdefault(ident, {})
            tid = rows.setdefault((rec["pid"], rec["tid"]), len(rows) + 1)
            seen_pids.setdefault(pid, _identity_label(worker, host))
            seen_tids.setdefault(
                (pid, tid), f"pid {rec['pid']} thread {rec['tid']}"
            )
            if worker is not None:
                args["worker"] = worker
            if host is not None:
                args["host"] = host
        else:
            pid, tid = rec["pid"], rec["tid"]
            seen_pids.setdefault(pid, f"repro pid {pid}")
            seen_tids.setdefault((pid, tid), f"thread {tid}")
        args["span_id"] = rec["id"]
        if rec.get("parent") is not None:
            args["parent_span_id"] = rec["parent"]
        if rec.get("cpu_us") is not None:
            args["cpu_us"] = rec["cpu_us"]
        events.append(
            {
                "name": rec["name"],
                "cat": rec.get("cat", "repro"),
                "ph": "X",
                "ts": rec["ts_us"],
                "dur": rec["dur_us"],
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
    meta = []
    for pid, label in seen_pids.items():
        meta.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "ts": 0,
                "args": {"name": label},
            }
        )
    for (pid, tid), label in seen_tids.items():
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "ts": 0,
                "args": {"name": label},
            }
        )
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def validate_chrome_trace(obj: dict) -> None:
    """Raise :class:`ObsError` unless *obj* is a well-formed Chrome trace."""
    if not isinstance(obj, dict):
        raise ObsError("chrome trace must be a JSON object")
    for field in CHROME_TRACE_SCHEMA["required_top"]:
        if field not in obj:
            raise ObsError(f"chrome trace missing top-level {field!r}")
    events = obj["traceEvents"]
    if not isinstance(events, list):
        raise ObsError("traceEvents must be a list")
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ObsError(f"traceEvents[{i}] is not an object")
        for field in CHROME_TRACE_SCHEMA["required_event"]:
            if field not in ev:
                raise ObsError(f"traceEvents[{i}] missing field {field!r}")
        if ev["ph"] not in CHROME_TRACE_SCHEMA["phases"]:
            raise ObsError(f"traceEvents[{i}] has unsupported phase {ev['ph']!r}")
        if ev["ph"] == "X" and "dur" not in ev:
            raise ObsError(f"traceEvents[{i}] complete event missing 'dur'")


def write_trace(path: str, records: list[dict]) -> None:
    """Write span records: ``.jsonl`` as a span log, else Chrome JSON."""
    if str(path).endswith(".jsonl"):
        with open(path, "w", encoding="utf-8") as fh:
            for rec in records:
                fh.write(json.dumps(rec, sort_keys=True) + "\n")
    else:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(chrome_trace(records), fh, indent=2, sort_keys=True)
            fh.write("\n")


def load_trace(path: str) -> list[dict]:
    """Load span records from either trace format back into record dicts."""
    try:
        with open(path, encoding="utf-8") as fh:
            text = fh.read()
    except OSError as exc:
        raise ObsError(f"cannot read trace file {path}: {exc}") from exc
    text = text.strip()
    if not text:
        return []
    # A Chrome trace is one JSON document; a span log is one object per
    # line.  Try the whole document first, fall back to line-by-line.
    obj = None
    if text.startswith("{"):
        try:
            obj = json.loads(text)
        except json.JSONDecodeError:
            obj = None
    if obj is not None:
        if not isinstance(obj, dict):
            raise ObsError(f"trace file {path} is not a chrome trace object")
        validate_chrome_trace(obj)
        records = []
        for ev in obj["traceEvents"]:
            if ev.get("ph") != "X":
                continue
            args = dict(ev.get("args") or {})
            rec = {
                "name": ev["name"],
                "cat": ev.get("cat", "repro"),
                "ts_us": ev["ts"],
                "dur_us": ev.get("dur", 0),
                "cpu_us": args.pop("cpu_us", None),
                "pid": ev["pid"],
                "tid": ev["tid"],
                "id": args.pop("span_id", None),
                "parent": args.pop("parent_span_id", None),
            }
            for field in SPAN_IDENTITY_FIELDS:
                value = args.pop(field, None)
                if value is not None:
                    rec[field] = value
            rec["args"] = args
            records.append(rec)
        return records
    records = []
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ObsError(
                f"trace file {path}:{lineno} is not valid JSONL: {exc}"
            ) from exc
        if "name" not in rec or "ts_us" not in rec:
            raise ObsError(f"trace file {path}:{lineno} missing span fields")
        new = {field: rec.get(field) for field in SPAN_FIELDS}
        for field in SPAN_IDENTITY_FIELDS:
            if rec.get(field) is not None:
                new[field] = rec[field]
        records.append(new)
    return records


def write_metrics(path: str, snapshot: dict) -> None:
    """Write a metrics snapshot: ``.prom``/``.txt`` as text format, else JSON."""
    if str(path).endswith((".prom", ".txt")):
        payload = render_prometheus(snapshot)
    else:
        payload = json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(payload)

"""Delta-encoded metric time series: the fleet's live telemetry stream.

Queue workers periodically **flush** — on the heartbeat cadence, plus
once right before every result publication — a record holding the
*delta* of their metrics registry since the previous flush, their
cumulative task count, and the wall seconds of tasks finished since the
last flush, appended to a single-writer ``telemetry/<worker>.jsonl``
file next to the queue's ``events/*.jsonl``.  The coordinator (and any
read-only observer: ``repro campaign status --watch``, ``repro obs
serve``) tails those files incrementally and folds the deltas into a
:class:`FleetSeries` using the same commutative snapshot-merge semantics
as end-of-run telemetry, yielding per-worker throughput rates, a fleet
ETA, and straggler flags (worker p90 wall vs. fleet p90).

Record format (one JSON object per line)::

    {"schema": 1, "ts": <epoch s>, "worker": "<id>", "seq": <n>,
     "tasks_done": <cumulative>, "walls": [<s>, ...],
     "current": "<fingerprint>" | null,
     "delta": {"schema": 1, "metrics": {...}}}       # may be empty

**Delta semantics.**  :func:`snapshot_delta` subtracts counter and
histogram series pointwise and passes gauges through; a series whose
current value is *below* the previous one is treated as a registry reset
(the worker published a result and cleared its registry) and contributes
its current value wholesale — the same convention Prometheus ``rate()``
applies to counter resets.  Because the queue worker flushes immediately
before each reset and then re-bases via :meth:`TelemetryWriter.mark_reset`,
nothing is double-counted and nothing is lost.

**Crash behaviour.**  Appends are single-writer, so a SIGKILLed worker
leaves at most one torn final line; :class:`TelemetryTail` consumes only
complete lines (byte-offset resume, exactly like the event tail), so a
torn tail is simply re-read when — if ever — it completes.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from threading import Lock
from typing import Any, Iterable

from repro.errors import ObsError
from repro.obs.metrics import SNAPSHOT_SCHEMA, MetricsRegistry

TIMESERIES_SCHEMA = 1

#: Flight-dump files share the telemetry directory; the tail skips them.
FLIGHT_SUFFIX = ".flight.json"


def _empty_snapshot() -> dict:
    return {"schema": SNAPSHOT_SCHEMA, "metrics": {}}


def snapshot_delta(prev: dict, curr: dict) -> dict:
    """Pointwise ``curr - prev`` of two metric snapshots, reset-aware.

    Counters and histogram buckets subtract series-by-series; a current
    value below the previous one means the registry was reset in between
    and the current value *is* the delta.  Gauges are instantaneous and
    pass through.  Empty series are omitted, so an idle interval yields
    ``{"schema": 1, "metrics": {}}``.
    """
    prev_metrics = prev.get("metrics", {})
    out: dict[str, Any] = {}
    for name, entry in curr.get("metrics", {}).items():
        kind = entry.get("kind")
        prior = prev_metrics.get(name, {})
        prior_series = prior.get("series", {}) if prior.get("kind") == kind else {}
        if kind == "counter":
            series = {}
            for key, value in entry.get("series", {}).items():
                before = prior_series.get(key, 0)
                series[key] = value - before if value >= before else value
            series = {k: v for k, v in series.items() if v}
            if series:
                out[name] = {"kind": kind, "help": entry.get("help", ""),
                             "series": series}
        elif kind == "gauge":
            series = dict(entry.get("series", {}))
            if series:
                out[name] = {"kind": kind, "help": entry.get("help", ""),
                             "series": series}
        elif kind == "histogram":
            series = {}
            for key, s in entry.get("series", {}).items():
                before = prior_series.get(key)
                if before is None or s["count"] < before["count"] or len(
                    before["buckets"]
                ) != len(s["buckets"]):
                    diff = {"buckets": list(s["buckets"]),
                            "sum": s["sum"], "count": s["count"]}
                else:
                    diff = {
                        "buckets": [
                            b - pb for b, pb in zip(s["buckets"],
                                                    before["buckets"])
                        ],
                        "sum": s["sum"] - before["sum"],
                        "count": s["count"] - before["count"],
                    }
                if diff["count"]:
                    series[key] = diff
            if series:
                out[name] = {"kind": kind, "help": entry.get("help", ""),
                             "boundaries": list(entry.get("boundaries", ())),
                             "series": series}
        else:
            raise ObsError(f"metric {name}: unknown kind {kind!r} in snapshot")
    return {"schema": SNAPSHOT_SCHEMA, "metrics": out}


class TelemetryWriter:
    """Single-writer append stream of delta records for one worker.

    Thread-safe: the worker's heartbeat thread and its task thread both
    flush.  The registry is *read*, never reset, by this class — result
    documents own the reset; :meth:`mark_reset` re-bases the delta
    baseline right after the owner clears the registry.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        worker: str,
        registry: MetricsRegistry | None = None,
        clock=time.time,
    ):
        from repro import obs  # local import: obs imports this module

        self.directory = Path(directory)
        self.worker = worker
        self._registry = registry if registry is not None else obs.get_meter()
        self._clock = clock
        self._lock = Lock()
        self._prev = _empty_snapshot()
        self._seq = 0
        self._walls: list[float] = []
        self._tasks_done = 0
        self._current: str | None = None
        #: Optional flight recorder fed a copy of every non-empty delta.
        self.flight = None

    def note_task(self, wall_seconds: float) -> None:
        """Record one finished task's wall time for the next flush."""
        with self._lock:
            self._walls.append(round(float(wall_seconds), 6))
            self._tasks_done += 1

    def set_current(self, fingerprint: str | None) -> None:
        with self._lock:
            self._current = fingerprint

    def flush(self) -> dict | None:
        """Append one delta record; returns it (``None`` while disabled)."""
        if not self._registry.enabled:
            return None
        curr = self._registry.snapshot()
        with self._lock:
            delta = snapshot_delta(self._prev, curr)
            self._prev = curr
            self._seq += 1
            record = {
                "schema": TIMESERIES_SCHEMA,
                "ts": round(self._clock(), 6),
                "worker": self.worker,
                "seq": self._seq,
                "tasks_done": self._tasks_done,
                "walls": self._walls,
                "current": self._current,
                "delta": delta,
            }
            self._walls = []
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.directory / f"{self.worker}.jsonl"
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
            handle.flush()
        if self.flight is not None and delta["metrics"]:
            self.flight.record_metrics(record["seq"], delta)
        return record

    def mark_reset(self) -> None:
        """Re-base the delta baseline after the owner reset the registry.

        Must follow a :meth:`flush` with no recording in between —
        otherwise the skipped increments are lost (never double-counted:
        the reset detection in :func:`snapshot_delta` is one-sided).
        """
        with self._lock:
            self._prev = _empty_snapshot()


class TelemetryTail:
    """Incremental reader of every worker's telemetry stream.

    Byte-offset resume per file; only complete lines are consumed, so a
    torn tail (killed writer) is re-read later.  Flight dumps sharing
    the directory are skipped.
    """

    def __init__(self, directory: str | os.PathLike):
        self.directory = Path(directory)
        self._offsets: dict[Path, int] = {}

    def new_records(self) -> list[dict]:
        records: list[dict] = []
        if not self.directory.is_dir():
            return records
        for path in sorted(self.directory.glob("*.jsonl")):
            offset = self._offsets.get(path, 0)
            try:
                with open(path, "rb") as handle:
                    handle.seek(offset)
                    chunk = handle.read()
            except OSError:
                continue
            if not chunk:
                continue
            complete, _, _ = chunk.rpartition(b"\n")
            if not complete:
                continue
            self._offsets[path] = offset + len(complete) + 1
            for raw in complete.split(b"\n"):
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    record = json.loads(raw)
                except ValueError:
                    continue
                if isinstance(record, dict) and record.get("worker"):
                    records.append(record)
        records.sort(key=lambda r: (r.get("ts", 0.0), r.get("worker", ""),
                                    r.get("seq", 0)))
        return records


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an ascending list (q in [0, 100])."""
    if not sorted_values:
        return 0.0
    rank = max(1, -(-len(sorted_values) * q // 100))  # ceil
    return sorted_values[int(rank) - 1]


class _WorkerSeries:
    """One worker's accumulated telemetry (pure bookkeeping)."""

    __slots__ = ("samples", "walls", "registry", "last_ts", "last_seq",
                 "current")

    def __init__(self) -> None:
        self.samples: list[tuple[float, int]] = []  # (ts, cumulative done)
        self.walls: list[float] = []
        self.registry = MetricsRegistry()
        self.last_ts = 0.0
        self.last_seq = 0
        self.current: str | None = None


class FleetSeries:
    """Fleet-wide view folded from tailed telemetry records.

    Pure data + math: no clocks of its own (callers pass ``now``), no
    I/O (records arrive via :meth:`ingest`), so the rate/ETA/straggler
    arithmetic is testable with an injected timeline.
    """

    def __init__(self, window: float = 30.0):
        if window <= 0:
            raise ObsError(f"rate window {window} must be positive")
        self.window = window
        self._workers: dict[str, _WorkerSeries] = {}

    # -- ingest -----------------------------------------------------------

    def ingest(self, records: Iterable[dict]) -> int:
        """Fold telemetry records in; returns how many were accepted.

        Duplicate or out-of-order records (same worker, non-increasing
        ``seq``) are dropped, so re-reading a file from offset zero — a
        fresh observer attaching to a running fleet — is harmless.
        """
        accepted = 0
        for record in records:
            worker = record.get("worker")
            seq = record.get("seq", 0)
            if not isinstance(worker, str) or not worker:
                continue
            series = self._workers.get(worker)
            if series is None:
                series = self._workers[worker] = _WorkerSeries()
            if not isinstance(seq, int) or seq <= series.last_seq:
                continue
            series.last_seq = seq
            ts = float(record.get("ts", 0.0))
            series.last_ts = max(series.last_ts, ts)
            done = record.get("tasks_done")
            if isinstance(done, int):
                series.samples.append((ts, done))
            walls = record.get("walls")
            if isinstance(walls, list):
                series.walls.extend(
                    float(w) for w in walls if isinstance(w, (int, float))
                )
            series.current = record.get("current")
            delta = record.get("delta")
            if isinstance(delta, dict) and delta.get("metrics"):
                series.registry.merge_snapshot(delta)
            accepted += 1
        return accepted

    # -- rates / ETA ------------------------------------------------------

    def workers(self) -> list[str]:
        return sorted(self._workers)

    def tasks_done(self, worker: str) -> int:
        series = self._workers.get(worker)
        if series is None or not series.samples:
            return 0
        return series.samples[-1][1]

    def fleet_tasks_done(self) -> int:
        return sum(self.tasks_done(w) for w in self._workers)

    def rate(self, worker: str, now: float) -> float:
        """Tasks/second over the trailing window, from cumulative counts."""
        series = self._workers.get(worker)
        if series is None or len(series.samples) < 2:
            return 0.0
        horizon = now - self.window
        base = series.samples[0]
        for sample in series.samples:
            if sample[0] < horizon:
                base = sample
            else:
                break
        last = series.samples[-1]
        span = last[0] - base[0]
        if span <= 0:
            return 0.0
        return max(0, last[1] - base[1]) / span

    def fleet_rate(self, now: float) -> float:
        return sum(self.rate(w, now) for w in self._workers)

    def eta_seconds(self, remaining: int, now: float) -> float | None:
        """Seconds to drain *remaining* tasks at the current fleet rate."""
        if remaining <= 0:
            return 0.0
        rate = self.fleet_rate(now)
        if rate <= 0:
            return None
        return remaining / rate

    # -- stragglers -------------------------------------------------------

    def worker_p90(self, worker: str) -> float | None:
        series = self._workers.get(worker)
        if series is None or not series.walls:
            return None
        return _percentile(sorted(series.walls), 90)

    def fleet_p90(self) -> float | None:
        walls: list[float] = []
        for series in self._workers.values():
            walls.extend(series.walls)
        if not walls:
            return None
        return _percentile(sorted(walls), 90)

    def stragglers(self, factor: float = 2.0, min_samples: int = 3
                   ) -> list[str]:
        """Workers whose p90 wall exceeds ``factor`` × the fleet p90.

        Requires ``min_samples`` finished tasks per worker and at least
        two reporting workers, so a lone worker (or one unlucky task)
        never flags.
        """
        fleet = self.fleet_p90()
        if fleet is None or fleet <= 0 or len(self._workers) < 2:
            return []
        out = []
        for worker in sorted(self._workers):
            series = self._workers[worker]
            if len(series.walls) < min_samples:
                continue
            p90 = _percentile(sorted(series.walls), 90)
            if p90 > factor * fleet:
                out.append(worker)
        return out

    # -- snapshots --------------------------------------------------------

    def merged_snapshot(self) -> dict:
        """All workers' deltas re-accumulated into one metrics snapshot."""
        registry = MetricsRegistry()
        for series in self._workers.values():
            registry.merge_snapshot(series.registry.snapshot())
        return registry.snapshot()

    def summary(self, now: float, remaining: int | None = None) -> dict:
        """JSON-serialisable fleet digest for status views and ``/snapshot``."""
        stragglers = set(self.stragglers())
        workers = {}
        for worker in sorted(self._workers):
            series = self._workers[worker]
            workers[worker] = {
                "tasks_done": self.tasks_done(worker),
                "rate_per_second": round(self.rate(worker, now), 4),
                "p90_wall_seconds": self.worker_p90(worker),
                "straggler": worker in stragglers,
                "last_report_age_seconds": round(
                    max(0.0, now - series.last_ts), 3
                ) if series.last_ts else None,
                "current": series.current,
            }
        summary: dict[str, Any] = {
            "schema": TIMESERIES_SCHEMA,
            "workers": workers,
            "fleet": {
                "tasks_done": self.fleet_tasks_done(),
                "rate_per_second": round(self.fleet_rate(now), 4),
                "p90_wall_seconds": self.fleet_p90(),
                "stragglers": sorted(stragglers),
            },
        }
        if remaining is not None:
            eta = self.eta_seconds(remaining, now)
            summary["fleet"]["remaining"] = remaining
            summary["fleet"]["eta_seconds"] = (
                round(eta, 3) if eta is not None else None
            )
        return summary

    @classmethod
    def from_queue_dir(cls, queue_dir: str | os.PathLike,
                       window: float = 30.0) -> "FleetSeries":
        """Read-only one-shot fold of a queue's telemetry directory."""
        fleet = cls(window=window)
        fleet.ingest(TelemetryTail(Path(queue_dir) / "telemetry").new_records())
        return fleet


__all__ = [
    "FLIGHT_SUFFIX",
    "TIMESERIES_SCHEMA",
    "FleetSeries",
    "TelemetryTail",
    "TelemetryWriter",
    "snapshot_delta",
]

"""repro — reproduction of *Masking timing errors on speed-paths in logic
circuits* (Choudhury & Mohanram, DATE 2009).

The package is organized bottom-up:

* :mod:`repro.bdd` — ROBDD engine (characteristic functions, counting, ISOP).
* :mod:`repro.logic` — cubes, covers, expressions, QM, factoring.
* :mod:`repro.netlist` — cells, libraries, gate-level circuits, BLIF I/O.
* :mod:`repro.sta` — static timing analysis and speed-path enumeration.
* :mod:`repro.sim` — logic/timing simulation and timing-error injection.
* :mod:`repro.spcf` — the three speed-path characteristic function algorithms.
* :mod:`repro.synth` — technology-independent networks, decomposition, mapping.
* :mod:`repro.core` — error-masking synthesis (the paper's contribution).
* :mod:`repro.analysis` — netlist lint + BDD-based formal verification.
* :mod:`repro.campaign` — resilient fault-injection campaigns (checkpoint/resume).
* :mod:`repro.apps` — wearout prediction and debug trace capture.
* :mod:`repro.benchcircuits` — benchmark circuits and generators.

Quickstart::

    from repro import mask_circuit, lsi10k_like_library, make_benchmark

    circuit = make_benchmark("C432")
    result = mask_circuit(circuit, lsi10k_like_library())
    print(result.report.area_overhead_percent, result.report.slack_percent)
"""

from repro.analysis import (
    LintConfig,
    LintReport,
    VerifyMaskReport,
    lint_circuit,
    lint_suite,
    verify_mask,
)
from repro.benchcircuits import circuit_by_name, make_benchmark
from repro.campaign import (
    CampaignSpec,
    RunnerConfig,
    plan_campaign,
    resume_campaign,
    run_campaign,
)
from repro.core import (
    MaskedDesign,
    MaskingResult,
    OverheadReport,
    PipelineResult,
    build_masked_design,
    mask_circuit,
    overhead_report,
    synthesize_masking,
    verify_masking,
)
from repro.netlist import (
    Circuit,
    Library,
    lsi10k_like_library,
    read_blif,
    unit_library,
    write_blif,
)
from repro.spcf import (
    SpcfContext,
    compare_algorithms,
    spcf_nodebased,
    spcf_pathbased,
    spcf_shortpath,
)
from repro.sta import analyze, enumerate_speed_paths

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Circuit",
    "Library",
    "unit_library",
    "lsi10k_like_library",
    "read_blif",
    "write_blif",
    "analyze",
    "enumerate_speed_paths",
    "SpcfContext",
    "spcf_shortpath",
    "spcf_pathbased",
    "spcf_nodebased",
    "compare_algorithms",
    "synthesize_masking",
    "mask_circuit",
    "build_masked_design",
    "verify_masking",
    "overhead_report",
    "MaskingResult",
    "MaskedDesign",
    "OverheadReport",
    "PipelineResult",
    "make_benchmark",
    "circuit_by_name",
    "LintConfig",
    "LintReport",
    "VerifyMaskReport",
    "lint_circuit",
    "lint_suite",
    "verify_mask",
    "CampaignSpec",
    "RunnerConfig",
    "plan_campaign",
    "run_campaign",
    "resume_campaign",
]

"""Error-masking synthesis — the paper's primary contribution."""

from repro.core.careset import cover_image, cube_image, local_care_sets
from repro.core.cubeselect import SelectionResult, select_cubes
from repro.core.integrate import MASKED_PREFIX, MaskedDesign, build_masked_design
from repro.core.masking import (
    IND_PREFIX,
    PRED_PREFIX,
    MaskingResult,
    MaskingSynthesizer,
    NodeMasking,
    synthesize_masking,
)
from repro.core.pipeline import PipelineResult, mask_circuit
from repro.core.report import (
    MaskingEffectiveness,
    OverheadReport,
    VerificationReport,
    masking_delay,
    overhead_report,
    verify_masking,
)

__all__ = [
    "cube_image",
    "cover_image",
    "local_care_sets",
    "SelectionResult",
    "select_cubes",
    "NodeMasking",
    "MaskingResult",
    "MaskingSynthesizer",
    "synthesize_masking",
    "PRED_PREFIX",
    "IND_PREFIX",
    "MASKED_PREFIX",
    "MaskedDesign",
    "build_masked_design",
    "VerificationReport",
    "verify_masking",
    "MaskingEffectiveness",
    "OverheadReport",
    "overhead_report",
    "masking_delay",
    "PipelineResult",
    "mask_circuit",
]

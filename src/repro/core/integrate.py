"""Integration of the masking circuit with the original design (Fig. 1).

The masked design is the original circuit, the masking circuit, and one
2-to-1 multiplexer per critical output: the indicator ``e_y`` drives the
select input, the original output the 0-input, and the prediction ``y~`` the
1-input.  Error masking is non-intrusive — the original gates are untouched —
and the only impact on the original outputs is the mux delay, which the
clock period absorbs (``clock_period`` below reports the compensated value).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MaskingError
from repro.netlist.circuit import Circuit
from repro.core.masking import MaskingResult
from repro.sta.timing import analyze

#: Net-name prefix for the mux-masked outputs in the combined circuit.
MASKED_PREFIX = "masked$"


@dataclass
class MaskedDesign:
    """The combined original + masking + mux circuit."""

    circuit: Circuit
    output_map: dict[str, str]
    """Original output name -> net carrying its (masked) value."""
    prediction_nets: dict[str, str]
    indicator_nets: dict[str, str]
    mux_delay: int

    @property
    def clock_period(self) -> int:
        """Original critical path delay plus the output-mux delay."""
        report = analyze(self.circuit, target=0)
        return max(
            report.arrival[net] for net in self.output_map.values()
        )


def build_masked_design(result: MaskingResult) -> MaskedDesign:
    """Fuse the original and masking circuits and insert the output muxes."""
    original = result.circuit
    masking = result.masking_circuit
    library = result.library
    combined = original.copy(f"{original.name}_masked")

    for name in masking.topo_order():
        gate = masking.gates[name]
        if combined.has_net(name):
            raise MaskingError(
                f"net name collision {name!r} between design and masking circuit"
            )
        combined.add_gate(name, gate.cell, gate.fanins, gate.delay_scale)

    mux_cell = library.get("MUX2")
    output_map: dict[str, str] = {}
    prediction_nets: dict[str, str] = {}
    indicator_nets: dict[str, str] = {}
    new_outputs: list[str] = []
    for y in original.outputs:
        nets = result.outputs.get(y)
        if nets is None:
            output_map[y] = y
            new_outputs.append(y)
            continue
        pred, ind = nets
        masked = MASKED_PREFIX + y
        combined.add_gate(masked, mux_cell, (ind, y, pred))
        output_map[y] = masked
        prediction_nets[y] = pred
        indicator_nets[y] = ind
        new_outputs.append(masked)

    merged = Circuit(combined.name, original.inputs, new_outputs)
    for name in combined.topo_order():
        gate = combined.gates[name]
        merged.add_gate(name, gate.cell, gate.fanins, gate.delay_scale)
    # Keep unmasked outputs visible as well (pass-through nets).
    merged.validate()
    return MaskedDesign(
        circuit=merged,
        output_map=output_map,
        prediction_nets=prediction_nets,
        indicator_nets=indicator_nets,
        mux_delay=max(mux_cell.pin_delays),
    )

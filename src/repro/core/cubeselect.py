"""Essential-weight cube selection (paper Sec. 4.1, steps (i)–(iii)).

Given an SOP cover of a node's on-set or off-set and the SPCF ``Sigma``:

1. cubes are arranged in ascending order of literal count,
2. the *essential weight* of the j-th cube is the fraction of ``Sigma``
   patterns covered by its primary-input-space image and not by the images
   of the cubes kept before it,
3. cubes with non-zero essential weight are kept, the rest discarded.

The kept cubes form the reduced covers ``n^0`` / ``n^1``.  By construction
the union of kept on-cubes still covers every ``Sigma``-reachable on-set
minterm (and symmetrically for the off-set): for any pattern in ``Sigma``,
the first full-cover cube containing its local minterm either was kept or
the pattern was already covered — property-tested in ``tests/core``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Mapping

from repro.bdd.manager import BddManager, Function
from repro.logic.cover import Cover
from repro.core.careset import cube_image


@dataclass(frozen=True)
class SelectionResult:
    """Outcome of one essential-weight pass over a cover."""

    kept: Cover
    weights: tuple[Fraction, ...]
    dropped: int

    @property
    def total_weight(self) -> Fraction:
        return sum(self.weights, Fraction(0))


def select_cubes(
    cover: Cover,
    sigma: Function,
    functions: Mapping[str, Function],
    mgr: BddManager,
    num_inputs: int,
) -> SelectionResult:
    """Keep the cubes of ``cover`` with non-zero essential weight vs ``sigma``.

    ``num_inputs`` is the number of primary-input variables for the model
    counts (weights are exact fractions of ``|Sigma|``).
    """
    ordered = cover.sorted_by_literal_count()
    sigma_count = sigma.count(num_inputs)
    covered = mgr.false
    kept = []
    weights = []
    for cube in ordered.cubes:
        image = cube_image(cube, ordered.names, functions, mgr)
        gain = sigma & image & ~covered
        if gain.is_false:
            continue
        kept.append(cube)
        if sigma_count:
            weights.append(Fraction(gain.count(num_inputs), sigma_count))
        else:
            weights.append(Fraction(0))
        covered = covered | image
    return SelectionResult(
        kept=Cover(ordered.names, tuple(kept)),
        weights=tuple(weights),
        dropped=cover.num_cubes - len(kept),
    )

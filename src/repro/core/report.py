"""Verification and overhead reporting for the masking synthesis.

:func:`verify_masking` proves (by BDD equivalence over the primary inputs)
the two invariants the whole scheme rests on:

* **soundness** — whenever the indicator ``e_y`` is 1, the prediction equals
  the original output, *for every input pattern* (so a raised indicator can
  never corrupt a correct output), and
* **coverage** — every SPCF pattern raises the indicator, which is exactly
  the paper's "100% masking of timing errors on all speed-paths".

Two verification methods share that report shape:

* ``method="bdd"`` (default) — the exact symbolic proof above, and
* ``method="sampling"`` — a Monte-Carlo check on the compiled circuit
  engine: the masking circuit and the original are co-simulated
  word-parallel over a random pattern batch, soundness is checked bitwise
  on every sampled pattern, and coverage is estimated over the sampled
  SPCF patterns.  Orders of magnitude faster on wide circuits where the
  BDDs blow up; statistical, not a proof.

:func:`overhead_report` computes the Table-2 row for one circuit: critical
outputs, critical minterms, slack of the masking circuit over the original,
and area/power overheads (including the output multiplexers).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.core.integrate import MaskedDesign, build_masked_design
from repro.core.masking import MaskingResult
from repro.engine import compile_circuit, pack_input_words, select_backend
from repro.errors import SimulationError
from repro.sim.logicsim import pack_patterns, random_patterns
from repro.spcf.timedfunc import expr_to_function
from repro.sta.timing import analyze
from repro.synth.power import switching_power


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of the BDD soundness/coverage check."""

    sound: bool
    unsound_outputs: tuple[str, ...]
    coverage: dict[str, Fraction]

    @property
    def full_coverage(self) -> bool:
        return all(c == 1 for c in self.coverage.values())

    @property
    def coverage_percent(self) -> float:
        if not self.coverage:
            return 100.0
        return 100.0 * float(sum(self.coverage.values()) / len(self.coverage))


def verify_masking(
    result: MaskingResult,
    method: str = "bdd",
    num_patterns: int = 4096,
    seed: int = 0,
) -> VerificationReport:
    """Check soundness and SPCF coverage of a synthesized masking circuit.

    ``method="bdd"`` proves both invariants exactly; ``method="sampling"``
    estimates them by Monte-Carlo word simulation on the compiled engine
    (``num_patterns`` random patterns, deterministic per ``seed``).
    """
    if method == "bdd":
        return _verify_masking_bdd(result)
    if method == "sampling":
        return _verify_masking_sampled(result, num_patterns, seed)
    raise SimulationError(
        f"unknown verification method {method!r}; choose 'bdd' or 'sampling'"
    )


def _verify_masking_bdd(result: MaskingResult) -> VerificationReport:
    ctx = result.context
    mgr = ctx.manager
    fns = {net: mgr.var(net) for net in result.circuit.inputs}
    masking = result.masking_circuit
    for name in masking.topo_order():
        gate = masking.gates[name]
        env = {pin: fns[f] for pin, f in zip(gate.cell.inputs, gate.fanins)}
        fns[name] = expr_to_function(gate.cell.expr, env, mgr)

    n = len(result.circuit.inputs)
    unsound: list[str] = []
    coverage: dict[str, Fraction] = {}
    for y, (pred_net, ind_net) in result.outputs.items():
        pred = fns[pred_net]
        ind = fns[ind_net]
        if not (ind & (pred ^ ctx.functions[y])).is_false:
            unsound.append(y)
        sigma = result.spcf.per_output[y]
        total = sigma.count(n)
        if total == 0:
            coverage[y] = Fraction(1)
        else:
            coverage[y] = Fraction((sigma & ind).count(n), total)
    return VerificationReport(
        sound=not unsound,
        unsound_outputs=tuple(unsound),
        coverage=coverage,
    )


def _verify_masking_sampled(
    result: MaskingResult, num_patterns: int, seed: int
) -> VerificationReport:
    """Monte-Carlo soundness/coverage estimate on the compiled engine."""
    if num_patterns <= 0:
        raise SimulationError(f"num_patterns {num_patterns} must be positive")
    circuit = result.circuit
    patterns = list(random_patterns(circuit.inputs, num_patterns, seed=seed))
    words, width = pack_patterns(circuit.inputs, patterns)
    mask = (1 << width) - 1
    backend = select_backend()

    orig = compile_circuit(circuit)
    orig_vals = backend.eval_words(orig, pack_input_words(orig, words, width), width)
    orig_of = dict(zip(orig.net_names, orig_vals))

    masking = compile_circuit(result.masking_circuit)
    mask_vals = backend.eval_words(
        masking, pack_input_words(masking, words, width), width
    )
    mask_of = dict(zip(masking.net_names, mask_vals))

    unsound: list[str] = []
    coverage: dict[str, Fraction] = {}
    for y, (pred_net, ind_net) in result.outputs.items():
        pred = mask_of[pred_net]
        ind = mask_of[ind_net]
        if ind & (pred ^ orig_of[y]) & mask:
            unsound.append(y)
        sigma = result.spcf.per_output[y]
        sigma_word = 0
        for i, pat in enumerate(patterns):
            if sigma.evaluate(pat):
                sigma_word |= 1 << i
        total = sigma_word.bit_count()
        if total == 0:
            coverage[y] = Fraction(1)
        else:
            coverage[y] = Fraction((sigma_word & ind).bit_count(), total)
    return VerificationReport(
        sound=not unsound,
        unsound_outputs=tuple(unsound),
        coverage=coverage,
    )


@dataclass(frozen=True)
class MaskingEffectiveness:
    """Before/after error counts for one output (or one aggregate group).

    The mux patch replaces an erroneous critical output with the masking
    circuit's prediction; *effectiveness* is the fraction of erroneous
    samples it repaired.  Shared by the sampling verifier and the
    fault-injection campaign aggregator, and additive: two disjoint sample
    batches combine with :meth:`merged`.
    """

    vectors: int
    unmasked_errors: int
    masked_errors: int

    @property
    def recovered(self) -> int:
        """Errors present before the mux patch and absent after it."""
        return max(0, self.unmasked_errors - self.masked_errors)

    @property
    def effectiveness_percent(self) -> float:
        """100 * recovered / unmasked errors (100.0 when nothing to mask)."""
        if self.unmasked_errors == 0:
            return 100.0
        return 100.0 * self.recovered / self.unmasked_errors

    def merged(self, other: "MaskingEffectiveness") -> "MaskingEffectiveness":
        return MaskingEffectiveness(
            vectors=self.vectors + other.vectors,
            unmasked_errors=self.unmasked_errors + other.unmasked_errors,
            masked_errors=self.masked_errors + other.masked_errors,
        )


@dataclass(frozen=True)
class OverheadReport:
    """One Table-2 row: overheads of masking for a single circuit."""

    circuit_name: str
    num_inputs: int
    num_outputs: int
    num_gates: int
    critical_outputs: int
    critical_minterms: int
    original_delay: int
    masking_delay: int
    slack_percent: float
    original_area: float
    masking_area: float
    area_overhead_percent: float
    original_power: float
    masking_power: float
    power_overhead_percent: float
    coverage_percent: float
    sound: bool

    @property
    def meets_slack_constraint(self) -> bool:
        """Paper requirement: the masking circuit has >= 20% timing slack."""
        return self.slack_percent >= 20.0


def masking_delay(result: MaskingResult) -> int:
    """Critical path delay of the masking circuit (prediction + indicator)."""
    if result.masking_circuit.num_gates == 0:
        return 0
    report = analyze(result.masking_circuit, target=0)
    nets = [n for pair in result.outputs.values() for n in pair]
    return max((report.arrival[n] for n in nets), default=0)


def overhead_report(
    result: MaskingResult,
    design: MaskedDesign | None = None,
    verification: VerificationReport | None = None,
    power_method: str = "bdd",
) -> OverheadReport:
    """Compute the paper's Table-2 metrics for one synthesized circuit."""
    if design is None:
        design = build_masked_design(result)
    if verification is None:
        verification = verify_masking(result)
    original = result.circuit
    delta = result.context.report.critical_delay
    mask_delay = masking_delay(result)
    slack_pct = 100.0 * (delta - mask_delay) / delta if delta else 100.0

    mux_area = sum(
        result.library.get("MUX2").area for _ in result.outputs
    )
    mask_area = result.masking_circuit.area() + mux_area
    orig_area = original.area()

    orig_power = switching_power(original, method=power_method)
    combined_power = switching_power(design.circuit, method=power_method)
    mask_power = combined_power - orig_power

    union_count = result.spcf.count() if result.outputs else 0
    return OverheadReport(
        circuit_name=original.name,
        num_inputs=len(original.inputs),
        num_outputs=len(original.outputs),
        num_gates=original.num_gates,
        critical_outputs=len(result.outputs),
        critical_minterms=union_count,
        original_delay=delta,
        masking_delay=mask_delay,
        slack_percent=slack_pct,
        original_area=orig_area,
        masking_area=mask_area,
        area_overhead_percent=100.0 * mask_area / orig_area if orig_area else 0.0,
        original_power=orig_power,
        masking_power=mask_power,
        power_overhead_percent=(
            100.0 * mask_power / orig_power if orig_power else 0.0
        ),
        coverage_percent=verification.coverage_percent,
        sound=verification.sound,
    )

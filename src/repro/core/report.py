"""Verification and overhead reporting for the masking synthesis.

:func:`verify_masking` proves (by BDD equivalence over the primary inputs)
the two invariants the whole scheme rests on:

* **soundness** — whenever the indicator ``e_y`` is 1, the prediction equals
  the original output, *for every input pattern* (so a raised indicator can
  never corrupt a correct output), and
* **coverage** — every SPCF pattern raises the indicator, which is exactly
  the paper's "100% masking of timing errors on all speed-paths".

:func:`overhead_report` computes the Table-2 row for one circuit: critical
outputs, critical minterms, slack of the masking circuit over the original,
and area/power overheads (including the output multiplexers).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.core.integrate import MaskedDesign, build_masked_design
from repro.core.masking import MaskingResult
from repro.spcf.timedfunc import expr_to_function
from repro.sta.timing import analyze
from repro.synth.power import switching_power


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of the BDD soundness/coverage check."""

    sound: bool
    unsound_outputs: tuple[str, ...]
    coverage: dict[str, Fraction]

    @property
    def full_coverage(self) -> bool:
        return all(c == 1 for c in self.coverage.values())

    @property
    def coverage_percent(self) -> float:
        if not self.coverage:
            return 100.0
        return 100.0 * float(sum(self.coverage.values()) / len(self.coverage))


def verify_masking(result: MaskingResult) -> VerificationReport:
    """Check soundness and SPCF coverage of a synthesized masking circuit."""
    ctx = result.context
    mgr = ctx.manager
    fns = {net: mgr.var(net) for net in result.circuit.inputs}
    masking = result.masking_circuit
    for name in masking.topo_order():
        gate = masking.gates[name]
        env = {pin: fns[f] for pin, f in zip(gate.cell.inputs, gate.fanins)}
        fns[name] = expr_to_function(gate.cell.expr, env, mgr)

    n = len(result.circuit.inputs)
    unsound: list[str] = []
    coverage: dict[str, Fraction] = {}
    for y, (pred_net, ind_net) in result.outputs.items():
        pred = fns[pred_net]
        ind = fns[ind_net]
        if not (ind & (pred ^ ctx.functions[y])).is_false:
            unsound.append(y)
        sigma = result.spcf.per_output[y]
        total = sigma.count(n)
        if total == 0:
            coverage[y] = Fraction(1)
        else:
            coverage[y] = Fraction((sigma & ind).count(n), total)
    return VerificationReport(
        sound=not unsound,
        unsound_outputs=tuple(unsound),
        coverage=coverage,
    )


@dataclass(frozen=True)
class OverheadReport:
    """One Table-2 row: overheads of masking for a single circuit."""

    circuit_name: str
    num_inputs: int
    num_outputs: int
    num_gates: int
    critical_outputs: int
    critical_minterms: int
    original_delay: int
    masking_delay: int
    slack_percent: float
    original_area: float
    masking_area: float
    area_overhead_percent: float
    original_power: float
    masking_power: float
    power_overhead_percent: float
    coverage_percent: float
    sound: bool

    @property
    def meets_slack_constraint(self) -> bool:
        """Paper requirement: the masking circuit has >= 20% timing slack."""
        return self.slack_percent >= 20.0


def masking_delay(result: MaskingResult) -> int:
    """Critical path delay of the masking circuit (prediction + indicator)."""
    if result.masking_circuit.num_gates == 0:
        return 0
    report = analyze(result.masking_circuit, target=0)
    nets = [n for pair in result.outputs.values() for n in pair]
    return max((report.arrival[n] for n in nets), default=0)


def overhead_report(
    result: MaskingResult,
    design: MaskedDesign | None = None,
    verification: VerificationReport | None = None,
    power_method: str = "bdd",
) -> OverheadReport:
    """Compute the paper's Table-2 metrics for one synthesized circuit."""
    if design is None:
        design = build_masked_design(result)
    if verification is None:
        verification = verify_masking(result)
    original = result.circuit
    delta = result.context.report.critical_delay
    mask_delay = masking_delay(result)
    slack_pct = 100.0 * (delta - mask_delay) / delta if delta else 100.0

    mux_area = sum(
        result.library.get("MUX2").area for _ in result.outputs
    )
    mask_area = result.masking_circuit.area() + mux_area
    orig_area = original.area()

    orig_power = switching_power(original, method=power_method)
    combined_power = switching_power(design.circuit, method=power_method)
    mask_power = combined_power - orig_power

    union_count = result.spcf.count() if result.outputs else 0
    return OverheadReport(
        circuit_name=original.name,
        num_inputs=len(original.inputs),
        num_outputs=len(original.outputs),
        num_gates=original.num_gates,
        critical_outputs=len(result.outputs),
        critical_minterms=union_count,
        original_delay=delta,
        masking_delay=mask_delay,
        slack_percent=slack_pct,
        original_area=orig_area,
        masking_area=mask_area,
        area_overhead_percent=100.0 * mask_area / orig_area if orig_area else 0.0,
        original_power=orig_power,
        masking_power=mask_power,
        power_overhead_percent=(
            100.0 * mask_power / orig_power if orig_power else 0.0
        ),
        coverage_percent=verification.coverage_percent,
        sound=verification.sound,
    )

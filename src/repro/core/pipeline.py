"""One-call end-to-end pipeline: circuit in, masked design + report out."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.integrate import MaskedDesign, build_masked_design
from repro.core.masking import MaskingResult, synthesize_masking
from repro.core.report import (
    OverheadReport,
    VerificationReport,
    overhead_report,
    verify_masking,
)
from repro.netlist.circuit import Circuit
from repro.netlist.library import Library

if TYPE_CHECKING:  # pragma: no cover - analysis sits above core
    from repro.analysis.paths.sensitize import PathsAnalysis


@dataclass
class PipelineResult:
    """Bundle returned by :func:`mask_circuit`."""

    masking: MaskingResult
    design: MaskedDesign
    verification: VerificationReport
    report: OverheadReport
    formal: "object | None" = None
    """:class:`repro.analysis.VerifyMaskReport` when ``self_verify`` was set."""


def mask_circuit(
    circuit: Circuit,
    library: Library,
    threshold: float = 0.9,
    target: int | None = None,
    max_support: int = 12,
    max_cubes: int = 20,
    cube_pool: str = "isop",
    dontcare_isop: bool = True,
    power_method: str = "bdd",
    self_verify: bool = False,
    paths: "PathsAnalysis | None" = None,
) -> PipelineResult:
    """Synthesize, integrate, verify, and report in one call.

    This is the primary public entry point of the library::

        from repro import mask_circuit, lsi10k_like_library
        result = mask_circuit(my_circuit, lsi10k_like_library())
        print(result.report.area_overhead_percent)

    With ``self_verify=True`` the formal pass of :mod:`repro.analysis` runs
    on the synthesized masking circuit (soundness, SPCF coverage, and
    off-SPCF equivalence of the mux-patched design, all by BDD equivalence)
    and a :class:`repro.errors.VerificationError` carrying a counterexample
    pattern is raised if any theorem fails; the proof record lands in
    :attr:`PipelineResult.formal`.
    """
    masking = synthesize_masking(
        circuit,
        library,
        threshold=threshold,
        target=target,
        max_support=max_support,
        max_cubes=max_cubes,
        cube_pool=cube_pool,
        dontcare_isop=dontcare_isop,
        paths=paths,
    )
    design = build_masked_design(masking)
    verification = verify_masking(masking)
    formal = None
    if self_verify:
        # Imported lazily: repro.analysis sits above repro.core in the layering.
        from repro.analysis import assert_verified

        formal = assert_verified(masking, design=design)
    report = overhead_report(
        masking, design=design, verification=verification, power_method=power_method
    )
    return PipelineResult(
        masking=masking,
        design=design,
        verification=verification,
        report=report,
        formal=formal,
    )

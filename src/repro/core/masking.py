"""Synthesis of the error-masking circuit (paper Sec. 4).

Pipeline implemented by :class:`MaskingSynthesizer`:

1. compute the exact SPCF ``Sigma_y`` of every critical output
   (:mod:`repro.spcf.shortpath`),
2. extract the technology-independent network ``T`` of the circuit and
   collapse it into complex nodes of ≤ ``max_support`` inputs,
3. for every node in the fanin cone of a critical output, select the cubes
   of its on-set/off-set SOPs by essential weight against ``Sigma`` → reduced
   covers ``n^1`` / ``n^0`` (:mod:`repro.core.cubeselect`),
4. form the prediction ``n~`` (the cheaper of ``n^1`` and ``NOT n^0``) and
   the indicator ``e_n = n^0 | n^1`` (the paper's XOR — the covers are
   disjoint), re-extract ``e_n`` as an ISOP and simplify it again by
   essential weight,
5. assemble the technology-independent masking network ``T~`` (prediction
   nodes feed prediction nodes; indicators are AND-ed per critical output)
   and map it onto the cell library.

The soundness invariant — ``e_y = 1`` implies ``y~ = y`` for *every* input
pattern, and ``Sigma_y`` implies ``e_y = 1`` — is checked by
:func:`repro.core.report.verify_masking`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro import obs
from repro.bdd.manager import BddManager, Function
from repro.bdd.isop import isop, isop_function
from repro.errors import MaskingError
from repro.logic.cover import Cover
from repro.logic.cube import Cube
from repro.netlist.circuit import Circuit
from repro.netlist.library import Library
from repro.core.cubeselect import SelectionResult, select_cubes
from repro.spcf.result import SpcfResult
from repro.spcf.shortpath import compute_spcf
from repro.spcf.timedfunc import SpcfContext
from repro.synth.collapse import circuit_to_technet, collapse
from repro.synth.mapping import map_technet, remove_buffers
from repro.synth.technet import TechNetwork, TechNode

if TYPE_CHECKING:  # pragma: no cover - keeps analysis optional at runtime
    from repro.analysis.paths.sensitize import PathsAnalysis

#: Name prefixes for prediction and indicator nodes in the masking network.
PRED_PREFIX = "p$"
IND_PREFIX = "e$"

_TRACER = obs.get_tracer("synth")
_METER = obs.get_meter()
_NODES_MASKED = _METER.counter(
    "repro_synth_nodes_masked_total", "technology nodes run through cube selection"
)
_CUBES_DROPPED = _METER.counter(
    "repro_synth_cubes_dropped_total",
    "cubes pruned by essential-weight selection across all masked nodes",
)
_TRIVIAL_INDICATORS = _METER.counter(
    "repro_synth_trivial_indicators_total",
    "masked nodes whose indicator collapsed to constant 1",
)


@dataclass(frozen=True)
class NodeMasking:
    """Per-node outcome of the cube-selection synthesis."""

    node_name: str
    fanins: tuple[str, ...]
    on_selection: SelectionResult
    off_selection: SelectionResult
    prediction_cover: Cover
    prediction_inverted: bool
    prediction_source: str
    indicator_cover: Cover
    indicator_trivial: bool

    @property
    def cubes_dropped(self) -> int:
        return self.on_selection.dropped + self.off_selection.dropped


@dataclass
class MaskingResult:
    """Everything produced by :meth:`MaskingSynthesizer.run`."""

    circuit: Circuit
    library: Library
    context: SpcfContext
    spcf: SpcfResult
    technet: TechNetwork
    node_maskings: dict[str, NodeMasking]
    masking_network: TechNetwork
    masking_circuit: Circuit
    outputs: dict[str, tuple[str, str]] = field(default_factory=dict)
    """Critical output -> (prediction net, indicator net) in the masking circuit."""

    @property
    def critical_outputs(self) -> tuple[str, ...]:
        return tuple(self.outputs)

    @property
    def is_trivial(self) -> bool:
        """True when the circuit has no critical outputs (nothing to mask)."""
        return not self.outputs


class MaskingSynthesizer:
    """Synthesize the error-masking circuit for one mapped design."""

    def __init__(
        self,
        circuit: Circuit,
        library: Library,
        threshold: float = 0.9,
        target: int | None = None,
        max_support: int = 12,
        max_cubes: int = 20,
        cube_pool: str = "isop",
        dontcare_isop: bool = True,
        context: SpcfContext | None = None,
        paths: "PathsAnalysis | None" = None,
    ) -> None:
        if cube_pool not in ("isop", "primes"):
            raise MaskingError(f"unknown cube pool {cube_pool!r}")
        circuit.validate()
        self.circuit = circuit
        self.library = library
        self.threshold = threshold
        self.target = target
        self.max_support = max_support
        self.max_cubes = max_cubes
        self.cube_pool = cube_pool
        self.use_dontcare_isop = dontcare_isop
        self.paths = paths
        if paths is not None and not paths.certificates.matches(circuit):
            raise MaskingError(
                "paths analysis was produced for a different circuit "
                f"(fingerprint mismatch on {circuit.name!r})"
            )
        if (
            paths is not None
            and target is not None
            and target != paths.certificates.target
        ):
            raise MaskingError(
                f"paths analysis targets t={paths.certificates.target} but "
                f"masking was asked for t={target}; tightening would be "
                "unsound across targets"
            )
        if context is None and paths is not None:
            # Consume the false-path verdicts: prune the SPCF recursion with
            # true-arrival certificates (bit-identical Sigma_y by ROBDD
            # canonicity — an output whose speed-paths are all prunable
            # gets Sigma_y == false and is skipped by the is_false guard
            # below, so masking never targets a false path).
            from repro.analysis.paths.tighten import tightened_arrivals
            from repro.analysis.precert.precertify import precertify

            certs = precertify(
                circuit,
                targets=[paths.certificates.target],
                threshold=threshold,
                tighten=tightened_arrivals(paths),
            )
            context = SpcfContext(
                circuit,
                threshold=threshold,
                target=paths.certificates.target,
                certificates=certs,
            )
        self.context = context or SpcfContext(
            circuit, threshold=threshold, target=target
        )

    # ------------------------------------------------------------------ run

    def run(self) -> MaskingResult:
        ctx = self.context
        with _TRACER.span(
            "synth.mask_circuit", circuit=self.circuit.name
        ) as run_span:
            spcf = compute_spcf(self.circuit, context=ctx)
            with _TRACER.span("synth.collapse") as collapse_span:
                technet = collapse(
                    circuit_to_technet(self.circuit),
                    max_support=self.max_support,
                    max_cubes=self.max_cubes,
                    library=self.library,
                )
                tfns = technet.global_functions(ctx.manager)
                if _METER.enabled:
                    collapse_span.set(nodes=sum(1 for _ in technet.topo_order()))

            # Sigma per node: union of the SPCFs of the critical outputs whose
            # fanin cone contains the node ("all outputs simultaneously").
            # With a paths analysis attached, outputs are visited in
            # true-path rank order, so the masking report lists (and the
            # cone walk reaches) the outputs carrying the longest replayed
            # speed-paths first.
            node_sigma: dict[str, Function] = {}
            cones: dict[str, set[str]] = {}
            per_output = spcf.per_output
            if self.paths is not None:
                rank: dict[str, int] = {}
                for cert in self.paths.certificates.ranked_true_paths():
                    rank.setdefault(cert.end, cert.rank or 0)
                per_output = dict(
                    sorted(
                        per_output.items(),
                        key=lambda kv: (rank.get(kv[0], 1 << 30), kv[0]),
                    )
                )
            for y, sigma in per_output.items():
                if sigma.is_false:
                    continue
                cone = technet.fanin_cone(y)
                cones[y] = cone
                for n in cone:
                    if n in node_sigma:
                        node_sigma[n] = node_sigma[n] | sigma
                    else:
                        node_sigma[n] = sigma

            maskings: dict[str, NodeMasking] = {}
            for name in technet.topo_order():
                if name not in node_sigma:
                    continue
                with _TRACER.span("synth.mask_node", node=name) as node_span:
                    masking = self._mask_node(
                        technet.node(name), node_sigma[name], tfns
                    )
                    maskings[name] = masking
                    if _METER.enabled:
                        _NODES_MASKED.add()
                        _CUBES_DROPPED.add(masking.cubes_dropped)
                        if masking.indicator_trivial:
                            _TRIVIAL_INDICATORS.add()
                        node_span.set(
                            cubes_dropped=masking.cubes_dropped,
                            prediction=masking.prediction_source,
                            trivial=masking.indicator_trivial,
                        )

            with _TRACER.span("synth.map"):
                network, indicator_nets = self._build_masking_network(
                    technet, cones, maskings
                )
                mapped = remove_buffers(
                    map_technet(
                        network,
                        self.library,
                        name=f"{self.circuit.name}_mask",
                        prefix="mk_",
                    )
                )
            outputs = {
                y: (PRED_PREFIX + y, indicator_nets[y]) for y in cones
            }
            run_span.set(masked_nodes=len(maskings), outputs=len(outputs))
        return MaskingResult(
            circuit=self.circuit,
            library=self.library,
            context=ctx,
            spcf=spcf,
            technet=technet,
            node_maskings=maskings,
            masking_network=network,
            masking_circuit=mapped,
            outputs=outputs,
        )

    # ------------------------------------------------------------- per node

    def _mask_node(
        self,
        node: TechNode,
        sigma: Function,
        tfns: Mapping[str, Function],
    ) -> NodeMasking:
        from repro.core.careset import local_image_cover
        from repro.synth.mapping import trial_cost

        ctx = self.context
        n_pis = len(self.circuit.inputs)
        on_pool, off_pool = self._selection_pools(node)
        on_sel = select_cubes(on_pool, sigma, tfns, ctx.manager, n_pis)
        off_sel = select_cubes(off_pool, sigma, tfns, ctx.manager, n_pis)

        local = BddManager(node.fanins)
        f_local = node.on_cover.to_function(local)
        image_cover = local_image_cover(node, sigma, tfns, ctx.manager)
        image = image_cover.to_function(local)
        s1 = image & f_local
        s0 = image & ~f_local

        # Prediction candidates: the paper's reduced covers n^1 / NOT n^0,
        # plus don't-care ISOPs squeezed between the satisfiability care
        # sets (the "rich input don't care space" of Sec. 4).  The cheapest
        # mapped implementation wins.
        candidates: list[tuple[Cover, bool, str]] = [
            (on_sel.kept, False, "n1-selected"),
            (off_sel.kept, True, "n0-selected"),
        ]
        if self.use_dontcare_isop:
            dc_on = Cover.from_cube_dicts(node.fanins, isop(s1, ~s0))
            dc_off = Cover.from_cube_dicts(node.fanins, isop(s0, ~s1))
            candidates.append((dc_on, False, "dc-on"))
            candidates.append((dc_off, True, "dc-off"))
        best = min(
            candidates,
            key=lambda cand: trial_cost(cand[0], self.library, inverted=cand[1]),
        )
        prediction_cover, inverted, source = best
        pred_fn = prediction_cover.to_function(local)
        if inverted:
            pred_fn = ~pred_fn

        # Indicator: any function between the Sigma-image (coverage) and the
        # prediction-agreement set (soundness).  The paper forms e = n0 XOR
        # n1 and prunes non-essential cubes; the bounded ISOP is the same
        # simplification taken to its don't-care-exploiting conclusion.
        agreement = ~(pred_fn ^ f_local)
        if agreement.is_true:
            indicator = Cover(node.fanins, (Cube.full(len(node.fanins)),))
            trivial = True
        elif self.use_dontcare_isop:
            indicator = Cover.from_cube_dicts(node.fanins, isop(image, agreement))
            trivial = False
        else:
            e_fn = image | (
                on_sel.kept.to_function(local) | off_sel.kept.to_function(local)
            )
            e_cover = Cover.from_cube_dicts(node.fanins, isop_function(e_fn))
            e_sel = select_cubes(e_cover, sigma, tfns, ctx.manager, n_pis)
            indicator = e_sel.kept
            trivial = False
        return NodeMasking(
            node_name=node.name,
            fanins=node.fanins,
            on_selection=on_sel,
            off_selection=off_sel,
            prediction_cover=prediction_cover,
            prediction_inverted=inverted,
            prediction_source=source,
            indicator_cover=indicator,
            indicator_trivial=trivial,
        )

    def _selection_pools(self, node: TechNode) -> tuple[Cover, Cover]:
        """Candidate cube pools for selection: ISOP covers or all QM primes.

        The ``"primes"`` pool matches the paper's wording ("the set of prime
        implicants in the on-set and off-set") and gives the selector more
        freedom; the default ``"isop"`` pool is the irredundant cover and is
        cheaper.  Compared in the A2 ablation benchmark.
        """
        if self.cube_pool != "primes" or node.num_fanins > 10:
            return node.on_cover, node.off_cover
        from repro.logic.qm import primes_of_truth_table

        width = node.num_fanins
        table = []
        for idx in range(1 << width):
            bits = [(idx >> (width - 1 - i)) & 1 for i in range(width)]
            table.append(
                any(c.contains_minterm(bits) for c in node.on_cover.cubes)
            )
        on_primes, off_primes = primes_of_truth_table(table)
        return (
            Cover(node.fanins, tuple(on_primes)),
            Cover(node.fanins, tuple(off_primes)),
        )

    # ------------------------------------------------------------ assembly

    def _rename_fanins(
        self, technet: TechNetwork, fanins: tuple[str, ...]
    ) -> dict[str, str]:
        return {
            f: (f if technet.is_input(f) else PRED_PREFIX + f) for f in fanins
        }

    def _cover_node(
        self, name: str, cover: Cover, rename: Mapping[str, str], inverted: bool
    ) -> TechNode:
        """TechNode computing ``cover`` (or its complement) on renamed fanins."""
        local = BddManager(cover.names)
        fn = cover.to_function(local)
        if inverted:
            fn = ~fn
        on = Cover.from_cube_dicts(cover.names, isop_function(fn))
        off = Cover.from_cube_dicts(cover.names, isop_function(~fn))
        renamed_names = tuple(rename[n] for n in cover.names)
        remap = dict(zip(cover.names, renamed_names))

        def remap_cover(c: Cover) -> Cover:
            return Cover.from_cube_dicts(
                renamed_names,
                [
                    {remap[k]: v for k, v in cube.to_dict(c.names).items()}
                    for cube in c.cubes
                ],
            )

        return TechNode(name, renamed_names, remap_cover(on), remap_cover(off))

    def _build_masking_network(
        self,
        technet: TechNetwork,
        cones: Mapping[str, set[str]],
        maskings: Mapping[str, NodeMasking],
    ) -> tuple[TechNetwork, dict[str, str]]:
        """Build T~; returns the network and the per-output indicator nets."""
        network = TechNetwork(
            f"{self.circuit.name}_masknet", self.circuit.inputs, ()
        )
        # Prediction and per-node indicator nodes.
        for name in technet.topo_order():
            masking = maskings.get(name)
            if masking is None:
                continue
            rename = self._rename_fanins(technet, masking.fanins)
            network.add_node(
                self._cover_node(
                    PRED_PREFIX + name,
                    masking.prediction_cover,
                    rename,
                    masking.prediction_inverted,
                )
            )
            if not masking.indicator_trivial:
                network.add_node(
                    self._cover_node(
                        "ei$" + name, masking.indicator_cover, rename, False
                    )
                )
        # Per-output indicator: AND of the cone's non-trivial node indicators.
        indicator_nets: dict[str, str] = {}
        for y, cone in cones.items():
            signals = sorted(
                "ei$" + n
                for n in cone
                if n in maskings and not maskings[n].indicator_trivial
            )
            indicator_nets[y] = self._add_and_tree(
                network, IND_PREFIX + y, signals
            )
        out_names = [PRED_PREFIX + y for y in cones] + sorted(
            set(indicator_nets.values())
        )
        network.outputs = tuple(dict.fromkeys(out_names))
        network.validate()
        return network, indicator_nets

    def _add_and_tree(
        self, network: TechNetwork, out_name: str, signals: list[str]
    ) -> str:
        """Balanced AND of ``signals``; returns the net carrying the result.

        A single signal is returned as-is (no identity node); an empty list
        yields a constant-1 node (every prediction is always correct).
        """
        if not signals:
            network.add_node(
                TechNode(out_name, (), Cover((), (Cube.full(0),)), Cover((), ()))
            )
            return out_name
        counter = 0
        level = list(signals)
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level), self.max_support):
                chunk = level[i : i + self.max_support]
                if len(chunk) == 1:
                    nxt.append(chunk[0])
                    continue
                name = (
                    out_name
                    if len(level) <= self.max_support
                    else f"{out_name}_t{counter}"
                )
                counter += 1
                nxt.append(self._add_and_node(network, name, tuple(chunk)))
            level = nxt
        return level[0]

    @staticmethod
    def _add_and_node(
        network: TechNetwork, name: str, fanins: tuple[str, ...]
    ) -> str:
        width = len(fanins)
        on = Cover(fanins, (Cube((1,) * width),))
        off_cubes = tuple(
            Cube.from_literals({i: False}, width) for i in range(width)
        )
        network.add_node(TechNode(name, fanins, on, Cover(fanins, off_cubes)))
        return name


def synthesize_masking(
    circuit: Circuit,
    library: Library,
    threshold: float = 0.9,
    target: int | None = None,
    max_support: int = 12,
    max_cubes: int = 20,
    cube_pool: str = "isop",
    dontcare_isop: bool = True,
    paths: "PathsAnalysis | None" = None,
) -> MaskingResult:
    """One-call API: synthesize the error-masking circuit for ``circuit``.

    ``paths`` attaches a speed-path classification of the same circuit
    (:func:`repro.analysis.paths.analyze_paths`): its prunable false paths
    prune the SPCF recursion via true-arrival certificates and its true
    paths rank the critical outputs, so masking effort never targets a
    statically unsensitizable path.
    """
    return MaskingSynthesizer(
        circuit,
        library,
        threshold=threshold,
        target=target,
        max_support=max_support,
        max_cubes=max_cubes,
        cube_pool=cube_pool,
        dontcare_isop=dontcare_isop,
        paths=paths,
    ).run()

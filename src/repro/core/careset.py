"""Satisfiability care-sets induced by the SPCF (paper Sec. 4.1).

For an internal node ``n_j`` of the technology-independent network, the SPCF
``Sigma_y`` at the primary inputs induces a *satisfiability care set* at the
node's local input space: the local minterms reachable from some pattern in
``Sigma_y``.  The paper avoids materializing these minterm sets by working
per-cube in primary-input space: the image of a local cube under the fanin
functions is just the conjunction of the fanins' global functions with the
cube's polarities — no quantification needed.

:func:`cube_image` implements that per-cube image; :func:`local_care_sets`
computes the explicit local-space ``s0``/``s1`` sets (used by the golden
comparator test and for diagnostics) with auxiliary manager variables.
"""

from __future__ import annotations

from typing import Mapping

from repro.bdd.manager import BddManager, Function, conjunction
from repro.errors import MaskingError
from repro.logic.cover import Cover
from repro.logic.cube import Cube
from repro.synth.technet import TechNode

#: Prefix for auxiliary local-space variables registered after the PIs.
AUX_PREFIX = "@aux:"


def cube_image(
    cube: Cube,
    names: tuple[str, ...],
    functions: Mapping[str, Function],
    mgr: BddManager,
) -> Function:
    """Primary-input-space image of a local cube.

    ``names`` gives the local variable (net) names of the cube's positions;
    ``functions`` maps nets to their global BDDs over the primary inputs.
    """
    terms = []
    for net, polarity in cube.to_dict(names).items():
        try:
            fn = functions[net]
        except KeyError:
            raise MaskingError(f"no global function for net {net!r}") from None
        terms.append(fn if polarity else ~fn)
    return conjunction(mgr, terms)


def cover_image(
    cover: Cover, functions: Mapping[str, Function], mgr: BddManager
) -> Function:
    """Primary-input-space image of a whole cover (OR of cube images)."""
    acc = mgr.false
    for cube in cover.cubes:
        acc = acc | cube_image(cube, cover.names, functions, mgr)
    return acc


def local_image_cover(
    node: TechNode,
    sigma: Function,
    functions: Mapping[str, Function],
    mgr: BddManager,
) -> Cover:
    """Exact image of ``sigma`` at the node's local input space, as a cover.

    Builds the transition relation ``sigma AND (aux_i == F_i)`` in ``mgr``,
    quantifies out the primary inputs, and re-expresses the result as an
    irredundant SOP over the node's fanin names.
    """
    from repro.bdd.isop import isop_function

    aux = {f: mgr.ensure_var(AUX_PREFIX + f) for f in node.fanins}
    relation = sigma
    for f in node.fanins:
        relation = relation & aux[f].iff(functions[f])
    pis = relation.support() - {AUX_PREFIX + f for f in node.fanins}
    reachable = relation.exists(pis)
    cubes = [
        {name[len(AUX_PREFIX):]: value for name, value in cube.items()}
        for cube in isop_function(reachable)
    ]
    return Cover.from_cube_dicts(node.fanins, cubes)


def local_care_sets(
    node: TechNode,
    sigma: Function,
    functions: Mapping[str, Function],
    mgr: BddManager,
) -> tuple[Function, Function]:
    """Explicit local-space care sets ``(s0, s1)`` of ``node`` under ``sigma``.

    Returns functions over auxiliary variables ``@aux:<fanin>`` (registered
    on demand at the bottom of the variable order): the sets of local input
    minterms reachable from ``sigma`` for which the node evaluates to 0 / 1.
    """
    aux = {f: mgr.ensure_var(AUX_PREFIX + f) for f in node.fanins}
    relation = sigma
    for f in node.fanins:
        relation = relation & aux[f].iff(functions[f])
    pis = [n for n in mgr.var_names if not n.startswith(AUX_PREFIX)]
    reachable = relation.exists(pis)
    rename = {f: AUX_PREFIX + f for f in node.fanins}
    on_local = node.on_cover.to_function(mgr, rename=rename)
    return reachable & ~on_local, reachable & on_local

"""Exception hierarchy for the :mod:`repro` library.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class.  Subsystems raise the most specific subclass
that applies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class BddError(ReproError):
    """Raised for invalid BDD manager operations (bad variable, mixed managers)."""


class LogicError(ReproError):
    """Raised for malformed cubes, covers, or Boolean expressions."""


class ExprSyntaxError(LogicError):
    """Raised when a Boolean expression string cannot be parsed."""


class NetlistError(ReproError):
    """Raised for structurally invalid circuits (cycles, dangling nets, arity)."""


class LibraryError(NetlistError):
    """Raised when a cell or library definition is inconsistent."""


class BlifError(NetlistError):
    """Raised when a BLIF file cannot be parsed."""


class TimingError(ReproError):
    """Raised for invalid static-timing queries (unknown net, bad threshold)."""


class SimulationError(ReproError):
    """Raised when a simulation is driven with malformed stimuli."""


class EngineError(ReproError):
    """Raised by :mod:`repro.engine` (unknown backend, malformed word batch)."""


class ObsError(ReproError):
    """Raised by :mod:`repro.obs` (bad metric names, malformed trace files)."""


class ExecError(ReproError):
    """Raised by :mod:`repro.exec` (bad tasks, unknown kinds, executor misuse)."""


class CampaignError(ReproError):
    """Raised by :mod:`repro.campaign` (bad specs, runner misconfiguration)."""


class CheckpointError(CampaignError):
    """Raised for unusable campaign checkpoints (corruption, spec mismatch)."""


class SpcfError(ReproError):
    """Raised when an SPCF computation is requested with invalid parameters."""


class SynthesisError(ReproError):
    """Raised when technology-independent network manipulation fails."""


class MaskingError(ReproError):
    """Raised when error-masking synthesis cannot satisfy its invariants."""


class AnalysisError(ReproError):
    """Raised by the static-analysis subsystem (:mod:`repro.analysis`)."""


class LintError(AnalysisError):
    """Raised for invalid linter configuration (unknown rule ids, bad limits)."""


class AbsintError(AnalysisError):
    """Raised by the abstract interpreter (bad config, fixpoint divergence)."""


class BaselineError(AnalysisError):
    """Raised for unreadable or structurally invalid baseline files."""


class PrecertError(AnalysisError):
    """Raised by :mod:`repro.analysis.precert` (bad certificates, tampering)."""


class VerificationError(AnalysisError):
    """Raised when formal verification of a masking circuit finds a violation."""


class PathsError(AnalysisError):
    """Raised by :mod:`repro.analysis.paths` (bad certificates, tampering)."""

"""Reduced ordered BDD engine.

Public surface:

* :class:`~repro.bdd.manager.BddManager` — node store and variable order.
* :class:`~repro.bdd.manager.Function` — operator-overloaded function handle.
* :func:`~repro.bdd.isop.isop` / :func:`~repro.bdd.isop.isop_function` —
  Minato–Morreale irredundant SOP extraction.
* :func:`~repro.bdd.serialize.function_to_json` /
  :func:`~repro.bdd.serialize.function_from_json` — linear-size DAG
  round-trip for shipping functions across process boundaries.
"""

from repro.bdd.isop import cover_to_function, isop, isop_function
from repro.bdd.manager import (
    BddManager,
    Function,
    conjunction,
    cube_function,
    disjunction,
)
from repro.bdd.serialize import BDD_SCHEMA, function_from_json, function_to_json

__all__ = [
    "BddManager",
    "Function",
    "conjunction",
    "cube_function",
    "disjunction",
    "isop",
    "isop_function",
    "cover_to_function",
    "BDD_SCHEMA",
    "function_to_json",
    "function_from_json",
]

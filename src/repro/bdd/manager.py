"""Hash-consed reduced ordered binary decision diagrams (ROBDDs).

This is the Boolean-function workhorse of the library.  Speed-path
characteristic functions (SPCFs), node care-sets, and signal probabilities are
all represented as BDDs over the primary inputs of a circuit.

The manager stores nodes in flat arrays indexed by integer ids; ``0`` and
``1`` are the terminal nodes.  The public API hands out :class:`Function`
wrappers with operator overloading so client code reads naturally::

    mgr = BddManager(["a", "b"])
    a, b = mgr.var("a"), mgr.var("b")
    f = a & ~b
    assert f.count() == 1

Variable order is the order of registration.  There is no dynamic reordering;
callers should register variables in circuit-topological order, which keeps
the cones of control-logic circuits small.
"""

from __future__ import annotations

import sys
from fractions import Fraction
from typing import Any, Iterable, Iterator, Mapping, Sequence

from repro import obs
from repro.errors import BddError

# BDD operations recurse to the depth of a function's support; circuits with
# hundreds of primary inputs need more than CPython's default 1000 frames.
sys.setrecursionlimit(max(sys.getrecursionlimit(), 100_000))

#: Sentinel level for the terminal nodes; larger than any variable level.
_TERMINAL_LEVEL = 1 << 60


class BddManager:
    """Owner of a shared ROBDD node store.

    Parameters
    ----------
    var_names:
        Optional initial variable names, registered in order.  More variables
        can be appended later with :meth:`add_var`.
    """

    def __init__(self, var_names: Iterable[str] = ()) -> None:
        # Node store: parallel arrays. Index 0 / 1 are the constants.
        self._level: list[int] = [_TERMINAL_LEVEL, _TERMINAL_LEVEL]
        self._lo: list[int] = [0, 1]
        self._hi: list[int] = [0, 1]
        self._unique: dict[tuple[int, int, int], int] = {}
        self._var_names: list[str] = []
        self._var_index: dict[str, int] = {}
        # Operation caches.
        self._not_cache: dict[int, int] = {}
        self._and_cache: dict[tuple[int, int], int] = {}
        self._xor_cache: dict[tuple[int, int], int] = {}
        self._ite_cache: dict[tuple[int, int, int], int] = {}
        # Per-operation call counters and exact computed-table hit/miss
        # counters.  Off by default: managers created while observability is
        # disabled carry no wrappers at all, so the recursive hot paths keep
        # their original cost.  Managers created while obs is enabled count
        # automatically (see stats()).
        self._op_counts: dict[str, int] | None = None
        self._cache_counts: dict[str, list[int]] | None = None
        if obs.get_meter().enabled:
            self.enable_op_counting()
        for name in var_names:
            self.add_var(name)

    # ------------------------------------------------------------------ vars

    def add_var(self, name: str) -> "Function":
        """Register a new variable at the bottom of the current order."""
        if name in self._var_index:
            raise BddError(f"variable {name!r} already registered")
        self._var_index[name] = len(self._var_names)
        self._var_names.append(name)
        return self.var(name)

    def ensure_var(self, name: str) -> "Function":
        """Return the variable ``name``, registering it if unknown."""
        if name in self._var_index:
            return self.var(name)
        return self.add_var(name)

    @property
    def var_names(self) -> tuple[str, ...]:
        """All registered variable names, in order."""
        return tuple(self._var_names)

    @property
    def num_vars(self) -> int:
        """Number of registered variables."""
        return len(self._var_names)

    def level_of(self, name: str) -> int:
        """Return the order level of a registered variable."""
        try:
            return self._var_index[name]
        except KeyError:
            raise BddError(f"unknown variable {name!r}") from None

    def name_of(self, level: int) -> str:
        """Return the variable name at ``level``."""
        try:
            return self._var_names[level]
        except IndexError:
            raise BddError(f"no variable at level {level}") from None

    # ----------------------------------------------------------------- nodes

    def _mk(self, level: int, lo: int, hi: int) -> int:
        """Return the id of the (reduced, hash-consed) node ``(level, lo, hi)``."""
        if lo == hi:
            return lo
        key = (level, lo, hi)
        node = self._unique.get(key)
        if node is None:
            node = len(self._level)
            self._level.append(level)
            self._lo.append(lo)
            self._hi.append(hi)
            self._unique[key] = node
        return node

    @property
    def num_nodes(self) -> int:
        """Total nodes allocated (including the two terminals)."""
        return len(self._level)

    # ----------------------------------------------------------- observability

    def enable_op_counting(self) -> None:
        """Count calls *and* exact computed-table hits/misses per operation.

        Counting is implemented by binding wrapper closures as *instance*
        attributes: a manager that never enables counting dispatches the
        original class methods with zero extra work, while the recursive
        self-calls of a counting manager resolve to the wrappers.

        Each wrapper replays its operation's terminal checks and key
        normalization, probes the computed table itself to attribute an
        exact hit or miss, and delegates the actual compute to the unbound
        original — whose recursive ``self._*`` calls re-enter the wrappers,
        so inner sub-calls are attributed too.  A "hit" is a probe that
        found the key, a "miss" is one that had to compute; terminal-rule
        short-circuits count as calls but touch neither bucket.
        """
        if self._op_counts is not None:
            return
        counts: dict[str, int] = {"mk": 0, "not": 0, "and": 0, "xor": 0, "ite": 0}
        cache_counts: dict[str, list[int]] = {
            "not": [0, 0],
            "and": [0, 0],
            "xor": [0, 0],
            "ite": [0, 0],
        }
        self._op_counts = counts
        self._cache_counts = cache_counts

        mk_unbound = type(self)._mk

        def counted_mk(level: int, lo: int, hi: int) -> int:
            counts["mk"] += 1
            return mk_unbound(self, level, lo, hi)

        not_unbound = type(self)._not
        not_cc = cache_counts["not"]

        def counted_not(u: int) -> int:
            counts["not"] += 1
            if u < 2:
                return 1 - u
            r = self._not_cache.get(u)
            if r is not None:
                not_cc[0] += 1
                return r
            not_cc[1] += 1
            return not_unbound(self, u)

        and_unbound = type(self)._and
        and_cc = cache_counts["and"]

        def counted_and(u: int, v: int) -> int:
            counts["and"] += 1
            if u == v:
                return u
            if u == 0 or v == 0:
                return 0
            if u == 1:
                return v
            if v == 1:
                return u
            if u > v:
                u, v = v, u
            r = self._and_cache.get((u, v))
            if r is not None:
                and_cc[0] += 1
                return r
            and_cc[1] += 1
            return and_unbound(self, u, v)

        xor_unbound = type(self)._xor
        xor_cc = cache_counts["xor"]

        def counted_xor(u: int, v: int) -> int:
            counts["xor"] += 1
            if u == v:
                return 0
            if u == 0:
                return v
            if v == 0:
                return u
            if u == 1 or v == 1:
                return xor_unbound(self, u, v)  # resolves via a counted _not
            if u > v:
                u, v = v, u
            r = self._xor_cache.get((u, v))
            if r is not None:
                xor_cc[0] += 1
                return r
            xor_cc[1] += 1
            return xor_unbound(self, u, v)

        ite_unbound = type(self)._ite
        ite_cc = cache_counts["ite"]

        def counted_ite(f: int, g: int, h: int) -> int:
            counts["ite"] += 1
            if f == 1:
                return g
            if f == 0:
                return h
            if g == h:
                return g
            if g == 1 and h == 0:
                return f
            if g == 0 and h == 1:
                return ite_unbound(self, f, g, h)  # resolves via a counted _not
            r = self._ite_cache.get((f, g, h))
            if r is not None:
                ite_cc[0] += 1
                return r
            ite_cc[1] += 1
            return ite_unbound(self, f, g, h)

        self._mk = counted_mk  # type: ignore[method-assign]
        self._not = counted_not  # type: ignore[method-assign]
        self._and = counted_and  # type: ignore[method-assign]
        self._xor = counted_xor  # type: ignore[method-assign]
        self._ite = counted_ite  # type: ignore[method-assign]

    def stats(self) -> dict[str, Any]:
        """Structural and (when counting) operational statistics.

        With counting enabled (:meth:`enable_op_counting`), ``computed_table``
        holds the **exact** per-operation computed-table hit/miss counts and
        ``cache_hit_rate`` is derived from them; both are absent otherwise.
        """
        out: dict[str, Any] = {
            "nodes": self.num_nodes,
            "vars": self.num_vars,
            "unique_entries": len(self._unique),
            "cache_entries": {
                "not": len(self._not_cache),
                "and": len(self._and_cache),
                "xor": len(self._xor_cache),
                "ite": len(self._ite_cache),
            },
        }
        if self._op_counts is not None:
            out["op_calls"] = dict(self._op_counts)
        if self._cache_counts is not None:
            table = {
                op: {"hits": hits, "misses": misses}
                for op, (hits, misses) in self._cache_counts.items()
            }
            out["computed_table"] = table
            out["cache_hit_rate"] = {
                op: round(c["hits"] / (c["hits"] + c["misses"]), 4)
                for op, c in table.items()
                if c["hits"] + c["misses"]
            }
        return out

    # ------------------------------------------------------------- constants

    @property
    def false(self) -> "Function":
        """The constant-0 function."""
        return Function(self, 0)

    @property
    def true(self) -> "Function":
        """The constant-1 function."""
        return Function(self, 1)

    def var(self, name: str) -> "Function":
        """Return the projection function of variable ``name``."""
        return Function(self, self._mk(self.level_of(name), 0, 1))

    def nvar(self, name: str) -> "Function":
        """Return the complement of variable ``name``."""
        return Function(self, self._mk(self.level_of(name), 1, 0))

    # -------------------------------------------------------------- core ops

    def _not(self, u: int) -> int:
        if u < 2:
            return 1 - u
        r = self._not_cache.get(u)
        if r is None:
            r = self._mk(self._level[u], self._not(self._lo[u]), self._not(self._hi[u]))
            self._not_cache[u] = r
            self._not_cache[r] = u
        return r

    def _and(self, u: int, v: int) -> int:
        if u == v:
            return u
        if u == 0 or v == 0:
            return 0
        if u == 1:
            return v
        if v == 1:
            return u
        if u > v:
            u, v = v, u
        key = (u, v)
        r = self._and_cache.get(key)
        if r is None:
            lu, lv = self._level[u], self._level[v]
            if lu == lv:
                r = self._mk(
                    lu,
                    self._and(self._lo[u], self._lo[v]),
                    self._and(self._hi[u], self._hi[v]),
                )
            elif lu < lv:
                r = self._mk(lu, self._and(self._lo[u], v), self._and(self._hi[u], v))
            else:
                r = self._mk(lv, self._and(u, self._lo[v]), self._and(u, self._hi[v]))
            self._and_cache[key] = r
        return r

    def _or(self, u: int, v: int) -> int:
        return self._not(self._and(self._not(u), self._not(v)))

    def _xor(self, u: int, v: int) -> int:
        if u == v:
            return 0
        if u == 0:
            return v
        if v == 0:
            return u
        if u == 1:
            return self._not(v)
        if v == 1:
            return self._not(u)
        if u > v:
            u, v = v, u
        key = (u, v)
        r = self._xor_cache.get(key)
        if r is None:
            lu, lv = self._level[u], self._level[v]
            if lu == lv:
                r = self._mk(
                    lu,
                    self._xor(self._lo[u], self._lo[v]),
                    self._xor(self._hi[u], self._hi[v]),
                )
            elif lu < lv:
                r = self._mk(lu, self._xor(self._lo[u], v), self._xor(self._hi[u], v))
            else:
                r = self._mk(lv, self._xor(u, self._lo[v]), self._xor(u, self._hi[v]))
            self._xor_cache[key] = r
        return r

    def _ite(self, f: int, g: int, h: int) -> int:
        if f == 1:
            return g
        if f == 0:
            return h
        if g == h:
            return g
        if g == 1 and h == 0:
            return f
        if g == 0 and h == 1:
            return self._not(f)
        key = (f, g, h)
        r = self._ite_cache.get(key)
        if r is None:
            level = min(self._level[f], self._level[g], self._level[h])
            f0, f1 = self._cof(f, level)
            g0, g1 = self._cof(g, level)
            h0, h1 = self._cof(h, level)
            r = self._mk(level, self._ite(f0, g0, h0), self._ite(f1, g1, h1))
            self._ite_cache[key] = r
        return r

    def _cof(self, u: int, level: int) -> tuple[int, int]:
        """Cofactors of ``u`` with respect to the variable at ``level``."""
        if self._level[u] == level:
            return self._lo[u], self._hi[u]
        return u, u

    # --------------------------------------------------------- restrict etc.

    def _restrict(self, u: int, assignment: Mapping[int, bool], cache: dict[int, int]) -> int:
        if u < 2:
            return u
        r = cache.get(u)
        if r is not None:
            return r
        level = self._level[u]
        if level in assignment:
            r = self._restrict(
                self._hi[u] if assignment[level] else self._lo[u], assignment, cache
            )
        else:
            r = self._mk(
                level,
                self._restrict(self._lo[u], assignment, cache),
                self._restrict(self._hi[u], assignment, cache),
            )
        cache[u] = r
        return r

    def _compose(self, u: int, subst: Mapping[int, int], cache: dict[int, int]) -> int:
        """Simultaneously substitute functions for variables (by level)."""
        if u < 2:
            return u
        r = cache.get(u)
        if r is not None:
            return r
        level = self._level[u]
        lo = self._compose(self._lo[u], subst, cache)
        hi = self._compose(self._hi[u], subst, cache)
        g = subst.get(level)
        if g is None:
            # All substituted functions might be ordered arbitrarily, so use
            # ITE on the projection variable to rebuild correctly.
            g = self._mk(level, 0, 1)
        r = self._ite(g, hi, lo)
        cache[u] = r
        return r

    def _exists(self, u: int, levels: frozenset[int], cache: dict[int, int]) -> int:
        if u < 2:
            return u
        level = self._level[u]
        if all(lv < level for lv in levels):
            # Every quantified variable is above this node: nothing to do.
            return u
        r = cache.get(u)
        if r is not None:
            return r
        lo = self._exists(self._lo[u], levels, cache)
        hi = self._exists(self._hi[u], levels, cache)
        if level in levels:
            r = self._or(lo, hi)
        else:
            r = self._mk(level, lo, hi)
        cache[u] = r
        return r

    # ----------------------------------------------------------- inspection

    def _support(self, u: int, out: set[int], seen: set[int]) -> None:
        if u < 2 or u in seen:
            return
        seen.add(u)
        out.add(self._level[u])
        self._support(self._lo[u], out, seen)
        self._support(self._hi[u], out, seen)

    def _scaled_count(self, u: int, nvars: int, cache: dict[int, int]) -> int:
        """Satisfying assignments of ``u`` over the variables *below* its own
        level, i.e. over ``nvars - level(u)`` free variables."""
        if u == 0:
            return 0
        if u == 1:
            return 1  # zero free variables below a terminal reached directly
        r = cache.get(u)
        if r is None:
            level = self._level[u]
            lo, hi = self._lo[u], self._hi[u]
            lo_level = min(self._level[lo], nvars)
            hi_level = min(self._level[hi], nvars)
            clo = self._scaled_count(lo, nvars, cache) << (lo_level - level - 1)
            chi = self._scaled_count(hi, nvars, cache) << (hi_level - level - 1)
            r = clo + chi
            cache[u] = r
        return r

    def satcount(self, u: int, nvars: int | None = None) -> int:
        """Exact satisfying-assignment count of node ``u`` over ``nvars`` vars."""
        if nvars is None:
            nvars = self.num_vars
        if u == 0:
            return 0
        if u == 1:
            return 1 << nvars
        level = self._level[u]
        if level >= nvars:
            raise BddError("satcount nvars smaller than function support")
        return self._scaled_count(u, nvars, {}) << level

    # ------------------------------------------------------------- iterators

    def _iter_cubes(self, u: int, prefix: dict[int, bool]) -> Iterator[dict[int, bool]]:
        if u == 0:
            return
        if u == 1:
            yield dict(prefix)
            return
        level = self._level[u]
        prefix[level] = False
        yield from self._iter_cubes(self._lo[u], prefix)
        prefix[level] = True
        yield from self._iter_cubes(self._hi[u], prefix)
        del prefix[level]


class Function:
    """A Boolean function handle bound to a :class:`BddManager`.

    Instances are immutable value objects: equality is structural (same
    manager, same node id), and all operators return new handles.
    """

    __slots__ = ("manager", "node")

    def __init__(self, manager: BddManager, node: int) -> None:
        self.manager = manager
        self.node = node

    # ------------------------------------------------------------- operators

    def _check(self, other: "Function") -> None:
        if self.manager is not other.manager:
            raise BddError("cannot combine functions from different managers")

    def __invert__(self) -> "Function":
        return Function(self.manager, self.manager._not(self.node))

    def __and__(self, other: "Function") -> "Function":
        self._check(other)
        return Function(self.manager, self.manager._and(self.node, other.node))

    def __or__(self, other: "Function") -> "Function":
        self._check(other)
        return Function(self.manager, self.manager._or(self.node, other.node))

    def __xor__(self, other: "Function") -> "Function":
        self._check(other)
        return Function(self.manager, self.manager._xor(self.node, other.node))

    def __sub__(self, other: "Function") -> "Function":
        """Set difference: ``self & ~other``."""
        self._check(other)
        return Function(
            self.manager, self.manager._and(self.node, self.manager._not(other.node))
        )

    def ite(self, then_f: "Function", else_f: "Function") -> "Function":
        """If-then-else with ``self`` as the selector."""
        self._check(then_f)
        self._check(else_f)
        return Function(
            self.manager, self.manager._ite(self.node, then_f.node, else_f.node)
        )

    def iff(self, other: "Function") -> "Function":
        """Logical equivalence (XNOR)."""
        return ~(self ^ other)

    def implies(self, other: "Function") -> "Function":
        """Logical implication ``self -> other``."""
        return ~self | other

    # ------------------------------------------------------------ predicates

    @property
    def is_false(self) -> bool:
        """True iff this is the constant-0 function."""
        return self.node == 0

    @property
    def is_true(self) -> bool:
        """True iff this is the constant-1 function."""
        return self.node == 1

    def is_subset_of(self, other: "Function") -> bool:
        """True iff ``self -> other`` is a tautology."""
        self._check(other)
        return self.manager._and(self.node, self.manager._not(other.node)) == 0

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Function)
            and other.manager is self.manager
            and other.node == self.node
        )

    def __hash__(self) -> int:
        return hash((id(self.manager), self.node))

    def __bool__(self) -> bool:
        raise BddError(
            "truth value of a BDD function is ambiguous; use .is_true/.is_false"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Function(node={self.node}, support={sorted(self.support())})"

    # ------------------------------------------------------------- transforms

    def restrict(self, assignment: Mapping[str, bool]) -> "Function":
        """Cofactor with respect to a partial variable assignment."""
        mgr = self.manager
        by_level = {mgr.level_of(name): bool(v) for name, v in assignment.items()}
        return Function(mgr, mgr._restrict(self.node, by_level, {}))

    def compose(self, substitution: Mapping[str, "Function"]) -> "Function":
        """Simultaneously substitute functions for variables."""
        mgr = self.manager
        subst: dict[int, int] = {}
        for name, fn in substitution.items():
            self._check(fn)
            subst[mgr.level_of(name)] = fn.node
        return Function(mgr, mgr._compose(self.node, subst, {}))

    def exists(self, names: Iterable[str]) -> "Function":
        """Existentially quantify the given variables."""
        mgr = self.manager
        levels = frozenset(mgr.level_of(n) for n in names)
        if not levels:
            return self
        return Function(mgr, mgr._exists(self.node, levels, {}))

    def forall(self, names: Iterable[str]) -> "Function":
        """Universally quantify the given variables."""
        return ~((~self).exists(names))

    # ------------------------------------------------------------ inspection

    def support(self) -> set[str]:
        """Names of the variables this function depends on."""
        mgr = self.manager
        levels: set[int] = set()
        mgr._support(self.node, levels, set())
        return {mgr.name_of(lv) for lv in levels}

    def count(self, nvars: int | None = None) -> int:
        """Exact number of satisfying minterms over ``nvars`` variables.

        Defaults to all variables registered in the manager *at call time*.
        """
        return self.manager.satcount(self.node, nvars)

    def fraction(self, nvars: int | None = None) -> Fraction:
        """Fraction of the input space satisfying this function."""
        mgr = self.manager
        if nvars is None:
            nvars = mgr.num_vars
        return Fraction(self.count(nvars), 1 << nvars)

    def evaluate(self, assignment: Mapping[str, bool]) -> bool:
        """Evaluate under a total assignment of the support variables."""
        mgr = self.manager
        u = self.node
        while u > 1:
            name = mgr.name_of(mgr._level[u])
            try:
                v = assignment[name]
            except KeyError:
                raise BddError(f"assignment missing variable {name!r}") from None
            u = mgr._hi[u] if v else mgr._lo[u]
        return u == 1

    def cubes(self) -> Iterator[dict[str, bool]]:
        """Iterate the disjoint path-cubes of the BDD (not necessarily prime)."""
        mgr = self.manager
        for cube in mgr._iter_cubes(self.node, {}):
            yield {mgr.name_of(lv): val for lv, val in cube.items()}

    def pick_one(self) -> dict[str, bool] | None:
        """Return one satisfying partial assignment, or ``None`` if UNSAT."""
        for cube in self.cubes():
            return cube
        return None

    def dag_size(self) -> int:
        """Number of distinct internal BDD nodes of this function."""
        mgr = self.manager
        seen: set[int] = set()

        def walk(u: int) -> None:
            if u < 2 or u in seen:
                return
            seen.add(u)
            walk(mgr._lo[u])
            walk(mgr._hi[u])

        walk(self.node)
        return len(seen)


def cube_function(mgr: BddManager, literals: Mapping[str, bool]) -> Function:
    """Build the conjunction of the given literals as a :class:`Function`."""
    f = mgr.true
    for name, val in literals.items():
        f = f & (mgr.var(name) if val else mgr.nvar(name))
    return f


def disjunction(mgr: BddManager, fns: Sequence[Function]) -> Function:
    """OR together a sequence of functions (balanced for cache friendliness)."""
    if not fns:
        return mgr.false
    items = list(fns)
    while len(items) > 1:
        nxt = [items[i] | items[i + 1] for i in range(0, len(items) - 1, 2)]
        if len(items) % 2:
            nxt.append(items[-1])
        items = nxt
    return items[0]


def conjunction(mgr: BddManager, fns: Sequence[Function]) -> Function:
    """AND together a sequence of functions (balanced)."""
    if not fns:
        return mgr.true
    items = list(fns)
    while len(items) > 1:
        nxt = [items[i] & items[i + 1] for i in range(0, len(items) - 1, 2)]
        if len(items) % 2:
            nxt.append(items[-1])
        items = nxt
    return items[0]

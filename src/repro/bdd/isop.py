"""Irredundant sum-of-products extraction from BDDs (Minato–Morreale ISOP).

The error-masking synthesis of the paper manipulates sum-of-products covers of
the on-set and off-set of every internal node of the technology-independent
network.  ``isop`` produces an irredundant prime-ish cover of any function
sandwiched between a lower bound ``L`` and an upper bound ``U`` (the classic
incompletely-specified formulation); ``isop_function`` covers a completely
specified function.

Cubes are returned as ``{var_name: bool}`` dictionaries; the conjunction of
the literals is the cube.  The returned cover ``cover`` satisfies
``L <= OR(cover) <= U`` and no cube can be dropped without uncovering ``L``.
"""

from __future__ import annotations

from typing import Mapping

from repro.bdd.manager import BddManager, Function, cube_function, disjunction
from repro.errors import BddError


def isop(lower: Function, upper: Function) -> list[dict[str, bool]]:
    """Compute an irredundant SOP cover ``C`` with ``lower <= C <= upper``.

    Raises :class:`BddError` if ``lower`` is not contained in ``upper``.
    """
    if lower.manager is not upper.manager:
        raise BddError("isop bounds must share a manager")
    if not lower.is_subset_of(upper):
        raise BddError("isop requires lower <= upper")
    mgr = lower.manager
    cover: list[dict[int, bool]] = []
    _isop(mgr, lower.node, upper.node, {}, cover)
    return [
        {mgr.name_of(level): value for level, value in cube.items()} for cube in cover
    ]


def isop_function(fn: Function) -> list[dict[str, bool]]:
    """Irredundant SOP cover of a completely specified function."""
    return isop(fn, fn)


def cover_to_function(mgr: BddManager, cover: list[Mapping[str, bool]]) -> Function:
    """Return the BDD of the disjunction of the cover's cubes."""
    return disjunction(mgr, [cube_function(mgr, cube) for cube in cover])


def _isop(
    mgr: BddManager,
    lower: int,
    upper: int,
    _memo_unused: dict[tuple[int, int], int],
    out: list[dict[int, bool]],
) -> int:
    """Recursive core; returns the BDD node of the generated cover."""
    if lower == 0:
        return 0
    if upper == 1:
        out.append({})
        return 1
    level = min(mgr._level[lower], mgr._level[upper])
    l0, l1 = mgr._cof(lower, level)
    u0, u1 = mgr._cof(upper, level)

    # Cubes that must carry the negative literal (cover L0 outside U1).
    sub0 = mgr._and(l0, mgr._not(u1))
    cubes0: list[dict[int, bool]] = []
    f0 = _isop(mgr, sub0, u0, _memo_unused, cubes0)

    # Cubes that must carry the positive literal (cover L1 outside U0).
    sub1 = mgr._and(l1, mgr._not(u0))
    cubes1: list[dict[int, bool]] = []
    f1 = _isop(mgr, sub1, u1, _memo_unused, cubes1)

    # Remaining lower-bound minterms can be covered without the variable.
    rest0 = mgr._and(l0, mgr._not(f0))
    rest1 = mgr._and(l1, mgr._not(f1))
    rest_lower = mgr._or(rest0, rest1)
    rest_upper = mgr._and(u0, u1)
    cubes_d: list[dict[int, bool]] = []
    fd = _isop(mgr, rest_lower, rest_upper, _memo_unused, cubes_d)

    for cube in cubes0:
        cube[level] = False
        out.append(cube)
    for cube in cubes1:
        cube[level] = True
        out.append(cube)
    out.extend(cubes_d)

    var_node = mgr._mk(level, 0, 1)
    with_var = mgr._ite(var_node, f1, f0)
    return mgr._or(with_var, fd)

"""JSON round-trip for BDD functions, linear in DAG size.

The wire form is the reduced DAG itself — a postorder list of
``[var_name, lo_ref, hi_ref]`` nodes (children strictly before parents)
plus a root reference.  References ``0``/``1`` are the terminals; ``n >= 2``
points at ``nodes[n - 2]``.

Rebuilding goes through ``var.ite(hi, lo)`` on the target manager, so the
result is hash-consed and reduced *by construction*: deserializing into a
manager with the same variable order yields the identical node id the
source manager held, which is what makes cross-process BDD results
bit-comparable.  (Path/cube enumeration was rejected for this job — it is
exponential in the worst case; the DAG is not.)
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.bdd.manager import BddManager, Function
from repro.errors import BddError

#: Schema version of the serialized function documents.
BDD_SCHEMA = 1


def _ref(node: int, index: Mapping[int, int]) -> int:
    return node if node < 2 else index[node]


def function_to_json(fn: Function) -> dict[str, Any]:
    """Serialize a function to a JSON-ready dict (postorder node list)."""
    mgr = fn.manager
    index: dict[int, int] = {}
    nodes: list[list[Any]] = []
    stack: list[tuple[int, bool]] = [(fn.node, False)]
    while stack:
        node, expanded = stack.pop()
        if node < 2 or node in index:
            continue
        if expanded:
            index[node] = len(nodes) + 2
            nodes.append(
                [
                    mgr.name_of(mgr._level[node]),
                    _ref(mgr._lo[node], index),
                    _ref(mgr._hi[node], index),
                ]
            )
        else:
            stack.append((node, True))
            stack.append((mgr._hi[node], False))
            stack.append((mgr._lo[node], False))
    return {"schema": BDD_SCHEMA, "root": _ref(fn.node, index), "nodes": nodes}


def function_from_json(mgr: BddManager, data: Mapping[str, Any]) -> Function:
    """Rebuild a serialized function inside ``mgr``.

    Every variable in the document's support must already be registered in
    ``mgr``; a missing one raises :class:`~repro.errors.BddError` rather
    than silently extending the order (the caller owns variable order —
    it is the canonicity contract).
    """
    if data.get("schema") != BDD_SCHEMA:
        raise BddError(
            f"unsupported BDD document schema {data.get('schema')!r} "
            f"(this build reads {BDD_SCHEMA})"
        )
    raw_nodes = data.get("nodes")
    if not isinstance(raw_nodes, list):
        raise BddError("BDD document has no node list")
    built: list[Function] = []

    def fn_of(ref: Any) -> Function:
        if not isinstance(ref, int) or ref < 0:
            raise BddError(f"malformed BDD node reference {ref!r}")
        if ref == 0:
            return mgr.false
        if ref == 1:
            return mgr.true
        if ref - 2 >= len(built):
            raise BddError(
                f"BDD node reference {ref} points past the built prefix "
                "(document is not in postorder)"
            )
        return built[ref - 2]

    for entry in raw_nodes:
        if not isinstance(entry, (list, tuple)) or len(entry) != 3:
            raise BddError(f"malformed BDD node entry {entry!r}")
        var, lo_ref, hi_ref = entry
        if not isinstance(var, str):
            raise BddError(f"BDD node variable {var!r} is not a name")
        built.append(mgr.var(var).ite(fn_of(hi_ref), fn_of(lo_ref)))
    return fn_of(data.get("root"))


__all__ = ["BDD_SCHEMA", "function_to_json", "function_from_json"]

"""Adaptive speed-up of critical gates (body-bias planning).

The paper's conclusions name "adaptive speed-up of critical gates using body
bias" as future work: when the logged masked-error rate shows a speed-path
slowing down, forward body bias can be applied to the gates on that path to
recover timing, at a leakage cost proportional to the biased area.

This module implements the *planning* side on top of our substrate:

* :func:`critical_gate_ranking` — rank gates by how many still-failing
  speed-paths run through them (the classic greedy set-cover signal),
* :func:`plan_body_bias` — greedily choose the smallest-area gate set whose
  speed-up brings every speed-path back under the target, modelling forward
  body bias as a per-gate delay de-rating factor on aged gates,
* :class:`BodyBiasPlan` — the chosen gates, recovered slack, and area cost.

The adaptive loop is: masking hides the errors (so the system keeps running
correctly), the logger localizes the slowdown, and the plan selects where to
spend bias.  Exercised end-to-end in ``benchmarks/bench_bodybias.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.netlist.circuit import Circuit
from repro.sta.timing import analyze


@dataclass(frozen=True)
class BodyBiasPlan:
    """Result of :func:`plan_body_bias`."""

    biased_gates: tuple[str, ...]
    biased_area: float
    total_area: float
    delay_before: int
    delay_after: int
    target: int

    @property
    def meets_target(self) -> bool:
        return self.delay_after <= self.target

    @property
    def area_fraction(self) -> float:
        """Fraction of circuit area receiving bias (the leakage proxy)."""
        return self.biased_area / self.total_area if self.total_area else 0.0


def critical_gate_ranking(circuit: Circuit, target: int) -> list[str]:
    """Gates ranked by decreasing criticality w.r.t. the target period.

    Criticality is the gate's negative slack (how far its worst path
    overshoots the target); ties break toward smaller area, since biasing a
    small gate costs less leakage.
    """
    report = analyze(circuit, target=target)
    scored = []
    for name in circuit.gates:
        slack = report.slack(name)
        if slack < 0:
            scored.append((slack, circuit.gates[name].cell.area, name))
    scored.sort()
    return [name for _, _, name in scored]


def _with_bias(circuit: Circuit, biased: set[str], recovery: float) -> Circuit:
    """Apply the bias de-rating to the chosen gates.

    A biased gate's delay scale moves from ``s`` toward ``1 + (s-1)*(1-r)``:
    forward bias recovers a fraction ``r`` of the aging-induced slowdown
    (it cannot make a gate faster than its unaged delay).
    """
    scales = {}
    for name in biased:
        gate = circuit.gates[name]
        recovered = 1.0 + (gate.delay_scale - 1.0) * (1.0 - recovery)
        scales[name] = max(1.0, recovered)
    out = circuit.copy()
    # with_delay_scales only raises scales; rebuild gates directly instead.
    from dataclasses import replace

    for name, scale in scales.items():
        out.replace_gate(replace(out.gate(name), delay_scale=scale))
    return out


def plan_body_bias(
    aged_circuit: Circuit,
    target: int,
    recovery: float = 0.6,
    max_gates: int | None = None,
) -> BodyBiasPlan:
    """Greedily select aged gates to bias until the target delay is met.

    Parameters
    ----------
    aged_circuit:
        The slowed-down circuit (gates carry ``delay_scale > 1``).
    target:
        Required critical-path delay after biasing (e.g. the clock period).
    recovery:
        Fraction of the aging-induced slowdown that forward bias recovers.
    max_gates:
        Optional cap on the number of biased gates.
    """
    if not 0.0 < recovery <= 1.0:
        raise SimulationError(f"recovery fraction {recovery} outside (0, 1]")
    before = analyze(aged_circuit, target=0).critical_delay
    biased: set[str] = set()
    current = aged_circuit
    limit = max_gates if max_gates is not None else len(aged_circuit.gates)
    while len(biased) < limit:
        report = analyze(current, target=target)
        if report.critical_delay <= target:
            break
        candidates = [
            name
            for name in critical_gate_ranking(current, target)
            if name not in biased and current.gates[name].delay_scale > 1.0
        ]
        if not candidates:
            break
        biased.add(candidates[0])
        current = _with_bias(aged_circuit, biased, recovery)
    after = analyze(current, target=0).critical_delay
    area = sum(aged_circuit.gates[g].cell.area for g in biased)
    return BodyBiasPlan(
        biased_gates=tuple(sorted(biased)),
        biased_area=area,
        total_area=aged_circuit.area(),
        delay_before=before,
        delay_after=after,
        target=target,
    )

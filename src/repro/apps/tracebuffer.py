"""Trace-buffer selective capture for in-system silicon debug (Sec. 2.1).

A trace buffer stores a fixed number of observation entries per debug
session.  Capturing every cycle fills it after ``depth`` cycles; gating the
capture on the masking circuit's indicator ``e_i`` — "this cycle exercised a
speed-path, so it is the suspect one" — stores only vulnerable cycles and
expands the observation window by the inverse of the indicator's activation
rate.

:func:`capture_experiment` measures both modes on a random workload and
reports the window-expansion factor the paper argues for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.integrate import MaskedDesign
from repro.errors import SimulationError
from repro.sim.logicsim import random_patterns, simulate


@dataclass(frozen=True)
class TraceEntry:
    """One captured observation: the cycle index and the traced values."""

    cycle: int
    values: tuple[bool, ...]


@dataclass
class TraceBuffer:
    """A depth-bounded capture buffer (oldest entries are not overwritten,
    matching a debug session that stops when the buffer fills)."""

    depth: int
    entries: list[TraceEntry] = field(default_factory=list)

    def capture(self, cycle: int, values: Sequence[bool]) -> bool:
        """Store an entry; returns ``False`` once the buffer is full."""
        if self.depth <= 0:
            raise SimulationError("trace buffer depth must be positive")
        if len(self.entries) >= self.depth:
            return False
        self.entries.append(TraceEntry(cycle, tuple(values)))
        return True

    @property
    def full(self) -> bool:
        return len(self.entries) >= self.depth

    @property
    def window(self) -> int:
        """Number of workload cycles spanned by the captured entries."""
        if not self.entries:
            return 0
        return self.entries[-1].cycle - self.entries[0].cycle + 1


@dataclass(frozen=True)
class CaptureReport:
    """Outcome of :func:`capture_experiment`."""

    buffer_depth: int
    cycles_run: int
    always_window: int
    selective_window: int
    selective_captures: int
    indicator_rate: float

    @property
    def expansion_factor(self) -> float:
        """How much longer the observed window is with selective capture."""
        if self.always_window == 0:
            return 1.0
        return self.selective_window / self.always_window


def capture_experiment(
    design: MaskedDesign,
    traced_nets: Sequence[str] | None = None,
    buffer_depth: int = 32,
    cycles: int = 4096,
    seed: int = 23,
) -> CaptureReport:
    """Compare capture-always against capture-on-indicator.

    ``traced_nets`` defaults to the masked critical outputs.  Both modes run
    the same random workload; the selective buffer stores a cycle only when
    some indicator ``e_i`` is high (the cycle exercised a speed-path).
    """
    circuit = design.circuit
    if traced_nets is None:
        traced_nets = tuple(design.output_map.values())
    for net in traced_nets:
        if not circuit.has_net(net):
            raise SimulationError(f"traced net {net!r} does not exist")
    indicators = tuple(design.indicator_nets.values())
    if not indicators:
        raise SimulationError("design has no indicator outputs to gate on")

    always = TraceBuffer(buffer_depth)
    selective = TraceBuffer(buffer_depth)
    active = 0
    for cycle, pattern in enumerate(
        random_patterns(circuit.inputs, cycles, seed=seed)
    ):
        values = simulate(circuit, pattern)
        traced = [values[n] for n in traced_nets]
        if not always.full:
            always.capture(cycle, traced)
        fired = any(values[i] for i in indicators)
        active += int(fired)
        if fired and not selective.full:
            selective.capture(cycle, traced)
    return CaptureReport(
        buffer_depth=buffer_depth,
        cycles_run=cycles,
        always_window=always.window,
        selective_window=selective.window if selective.entries else 0,
        selective_captures=len(selective.entries),
        indicator_rate=active / cycles if cycles else 0.0,
    )

"""Aggressive dynamic frequency/voltage scaling with error masking.

The paper's conclusions name "aggressive dynamic voltage scaling by masking
timing errors" as future work.  The idea: with the masking circuit in place,
the clock period can be pushed *below* the critical path delay — timing
errors start appearing on the speed-paths first, and those are exactly the
cycles the masking circuit covers.  Operation stays correct until the clock
cuts into paths outside the protected band.

:func:`dvs_sweep` measures this: it sweeps the clock period downward and
reports, per step, the raw timing-error rate of the unprotected circuit and
the residual error rate of the masked design.  :func:`min_safe_period`
extracts the crossover — the shortest period with zero residual errors —
and its speedup over the conventional ``period >= Delta`` rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.integrate import MaskedDesign
from repro.core.masking import MaskingResult
from repro.errors import SimulationError
from repro.sim.eventsim import two_vector_waveforms


@dataclass(frozen=True)
class DvsPoint:
    """Measurements at one clock period."""

    period: int
    raw_error_rate: float
    masked_error_rate: float
    residual_error_rate: float

    @property
    def is_safe(self) -> bool:
        """True iff overclocking to this period escapes no errors."""
        return self.residual_error_rate == 0.0


@dataclass(frozen=True)
class DvsResult:
    """Outcome of a full period sweep."""

    nominal_period: int
    points: tuple[DvsPoint, ...]

    def min_safe_period(self) -> int:
        """Shortest swept period with zero residual errors."""
        safe = [p.period for p in self.points if p.is_safe]
        if not safe:
            raise SimulationError("no safe period in the sweep")
        return min(safe)

    @property
    def speedup_percent(self) -> float:
        """Clock speedup unlocked by masking, vs. the nominal period."""
        return 100.0 * (1.0 - self.min_safe_period() / self.nominal_period)


def _cycle_outcome(
    design: MaskedDesign, waves, period: int
) -> tuple[bool, bool, bool]:
    """(raw error, masked event, residual error) for one sampled cycle."""
    raw = masked_event = residual = False
    for y in design.output_map:
        correct = waves[y].final
        sampled = waves[y].value_at(period)
        unstable = waves[y].settle_time > period
        if sampled != correct or unstable:
            raw = True
        pred_net = design.prediction_nets.get(y)
        if pred_net is None:
            if sampled != correct or unstable:
                residual = True
            continue
        e = waves[design.indicator_nets[y]].value_at(period)
        pred = waves[pred_net].value_at(period)
        if e and (sampled != pred or unstable):
            masked_event = True
        if e:
            if pred != correct:
                residual = True
        elif sampled != correct or unstable:
            residual = True
    return raw, masked_event, residual


def dvs_sweep(
    masking: MaskingResult,
    design: MaskedDesign,
    periods: Sequence[int] | None = None,
    cycles: int = 150,
    seed: int = 29,
    sigma_bias: float = 0.35,
) -> DvsResult:
    """Sweep the clock period downward and measure error rates.

    ``periods`` defaults to 100% down to 80% of the compensated nominal
    period in ~4% steps (the masking circuit protects the top-10% band, so
    the safe region should extend to roughly 90%).  The workload is biased
    into the SPCF like :func:`repro.apps.wearout.wearout_experiment`.
    """
    from repro.apps.wearout import _biased_workload

    nominal = design.clock_period
    if periods is None:
        periods = sorted(
            {int(nominal * f / 100.0) for f in range(80, 101, 4)}, reverse=True
        )
    if not periods:
        raise SimulationError("empty period sweep")
    pats = _biased_workload(
        masking, design.circuit.inputs, cycles + 1, seed, sigma_bias
    )
    pairs = list(zip(pats, pats[1:]))
    # Waveforms are period-independent: simulate each vector pair once and
    # re-sample at every swept period.
    relevant = set(design.output_map) | set(
        design.prediction_nets.values()
    ) | set(design.indicator_nets.values())
    all_waves = []
    for v1, v2 in pairs:
        waves = two_vector_waveforms(design.circuit, v1, v2)
        all_waves.append({net: waves[net] for net in relevant})
    points = []
    for period in periods:
        raw = events = residual = 0
        for waves in all_waves:
            r, m, esc = _cycle_outcome(design, waves, period)
            raw += int(r)
            events += int(m)
            residual += int(esc)
        n = len(pairs)
        points.append(
            DvsPoint(
                period=period,
                raw_error_rate=raw / n,
                masked_error_rate=events / n,
                residual_error_rate=residual / n,
            )
        )
    return DvsResult(nominal_period=nominal, points=tuple(points))

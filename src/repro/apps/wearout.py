"""Wearout prediction from masked-error statistics (paper Sec. 2.1).

With the masking circuit deployed, a timing error that was masked is
observable as ``e_i AND (y_i XOR y~_i)``.  :class:`ErrorLogger` counts these
events per analysis window; :class:`WearoutMonitor` watches the masked-error
*rate* across windows and flags the onset of wearout when the rate crosses a
threshold or trends upward persistently — the paper's "periodic offline
analysis" loop.

:func:`wearout_experiment` drives the whole story: an aging model gradually
slows the speed-path gates of a masked design, random workloads run each
epoch, and the monitor's flag is compared against the epoch where unmasked
timing errors would have corrupted outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.core.integrate import MaskedDesign
from repro.core.masking import MaskingResult
from repro.errors import SimulationError
from repro.netlist.circuit import Circuit
from repro.sim.aging import LinearAging, SaturatingAging, speed_path_gates
from repro.sim.eventsim import two_vector_waveforms
from repro.sim.logicsim import random_patterns


@dataclass
class ErrorLogger:
    """Counts masked-error events (``e & (y ^ y~)``) per analysis window."""

    window_size: int
    _current_events: int = 0
    _current_cycles: int = 0
    windows: list[float] = field(default_factory=list)

    def record(self, masked_error: bool) -> None:
        """Log one cycle; rolls the window over when it fills up."""
        if self.window_size <= 0:
            raise SimulationError("window size must be positive")
        self._current_events += int(masked_error)
        self._current_cycles += 1
        if self._current_cycles >= self.window_size:
            self.windows.append(self._current_events / self._current_cycles)
            self._current_events = 0
            self._current_cycles = 0

    @property
    def latest_rate(self) -> float:
        """Masked-error rate of the last completed window (0.0 if none)."""
        return self.windows[-1] if self.windows else 0.0


@dataclass
class WearoutMonitor:
    """Flags wearout onset from the windowed masked-error rate.

    Onset is flagged when the rate exceeds ``rate_threshold``, or when it
    increases over ``trend_windows`` consecutive windows.
    """

    rate_threshold: float = 0.02
    trend_windows: int = 3

    def onset_window(self, rates: Sequence[float]) -> int | None:
        """Index of the first window that triggers the wearout flag."""
        run = 0
        for i, rate in enumerate(rates):
            if rate > self.rate_threshold:
                return i
            if i > 0 and rate > rates[i - 1] > 0:
                run += 1
                if run >= self.trend_windows:
                    return i
            else:
                run = 0
        return None


@dataclass(frozen=True)
class WearoutEpoch:
    """Measurements for one aging epoch."""

    stress_time: float
    delay_scale: float
    masked_error_rate: float
    unmasked_error_rate: float
    residual_error_rate: float
    """Errors that escape the masked design (should stay 0 while the
    masking circuit retains slack)."""


def _masked_cycle(
    design: MaskedDesign,
    aged: Circuit,
    v1: Mapping[str, bool],
    v2: Mapping[str, bool],
    clock: int,
) -> tuple[bool, bool, bool]:
    """One clocked cycle on the aged masked design.

    Returns ``(masked_error_event, unmasked_error, residual_error)``.
    """
    waves = two_vector_waveforms(aged, v1, v2)
    masked_event = False
    unmasked_error = False
    residual_error = False
    for y, masked_net in design.output_map.items():
        correct = waves[y].final
        raw_sampled = waves[y].value_at(clock)
        # Conservative sampling semantics: a net still switching at the
        # clock edge is unreliable even if the instantaneous value happens
        # to be right (the flop may catch a glitch or go metastable).
        raw_bad = raw_sampled != correct or waves[y].settle_time > clock
        if raw_bad:
            unmasked_error = True
        pred_net = design.prediction_nets.get(y)
        if pred_net is not None:
            e = waves[design.indicator_nets[y]].value_at(clock)
            pred = waves[pred_net].value_at(clock)
            if e and (raw_sampled != pred or waves[y].settle_time > clock):
                # The paper's logged event: e_i AND (y_i XOR y~_i).
                masked_event = True
            if e:
                ok = pred == correct
            else:
                ok = not raw_bad
        else:
            ok = not raw_bad
        if not ok:
            residual_error = True
    return masked_event, unmasked_error, residual_error


def _biased_workload(
    masking: MaskingResult,
    inputs: tuple[str, ...],
    count: int,
    seed: int,
    sigma_bias: float,
) -> list[dict[str, bool]]:
    """Random vectors, a fraction of which are completed SPCF cubes.

    Speed-path activation patterns are rare by nature (that is the paper's
    point), so a purely random workload may never exercise them; biasing a
    fraction of the vectors into the SPCF models a stressing workload.
    """
    import random as _random

    rng = _random.Random(seed)
    seeds: list[dict[str, bool]] = []
    if sigma_bias > 0 and not masking.is_trivial:
        for cube in masking.spcf.union.cubes():
            seeds.append(dict(cube))
            if len(seeds) >= 64:
                break
    pats = []
    for pattern in random_patterns(inputs, count, seed=seed):
        if seeds and rng.random() < sigma_bias:
            chosen = dict(pattern)
            chosen.update(rng.choice(seeds))
            pats.append(chosen)
        else:
            pats.append(dict(pattern))
    return pats


def wearout_experiment(
    masking: MaskingResult,
    design: MaskedDesign,
    aging: LinearAging | SaturatingAging | None = None,
    epochs: int = 10,
    cycles_per_epoch: int = 200,
    seed: int = 11,
    sigma_bias: float = 0.35,
) -> list[WearoutEpoch]:
    """Age the design and measure masked/unmasked/residual error rates.

    The clock period is the original critical path delay plus the output-mux
    delay (the compensated period of Sec. 2); speed-path gates slow down each
    epoch, so raw timing errors appear and the masking circuit hides them.
    ``sigma_bias`` is the fraction of workload vectors steered into the SPCF
    (speed-path activations are rare under uniform vectors by design).
    """
    aging = aging or LinearAging(rate=0.035)
    base = design.circuit
    clock = design.clock_period
    gates = speed_path_gates(masking.circuit) & set(base.gates)
    results: list[WearoutEpoch] = []
    for epoch in range(epochs):
        scale = aging.scale_at(float(epoch))
        aged = base.with_delay_scales({g: scale for g in gates})
        masked = unmasked = residual = 0
        pats = _biased_workload(
            masking, base.inputs, cycles_per_epoch + 1, seed + epoch, sigma_bias
        )
        for v1, v2 in zip(pats, pats[1:]):
            m, u, r = _masked_cycle(design, aged, v1, v2, clock)
            masked += int(m)
            unmasked += int(u)
            residual += int(r)
        results.append(
            WearoutEpoch(
                stress_time=float(epoch),
                delay_scale=scale,
                masked_error_rate=masked / cycles_per_epoch,
                unmasked_error_rate=unmasked / cycles_per_epoch,
                residual_error_rate=residual / cycles_per_epoch,
            )
        )
    return results


def predict_onset(
    epochs: Iterable[WearoutEpoch],
    monitor: WearoutMonitor | None = None,
) -> int | None:
    """Apply the monitor to an epoch series; returns the flagged epoch."""
    monitor = monitor or WearoutMonitor()
    return monitor.onset_window([e.masked_error_rate for e in epochs])

"""Applications: wearout prediction, debug capture, DVS, body-bias planning."""

from repro.apps.bodybias import (
    BodyBiasPlan,
    critical_gate_ranking,
    plan_body_bias,
)
from repro.apps.dvs import DvsPoint, DvsResult, dvs_sweep
from repro.apps.tracebuffer import (
    CaptureReport,
    TraceBuffer,
    TraceEntry,
    capture_experiment,
)
from repro.apps.wearout import (
    ErrorLogger,
    WearoutEpoch,
    WearoutMonitor,
    predict_onset,
    wearout_experiment,
)

__all__ = [
    "BodyBiasPlan",
    "critical_gate_ranking",
    "plan_body_bias",
    "DvsPoint",
    "DvsResult",
    "dvs_sweep",
    "ErrorLogger",
    "WearoutMonitor",
    "WearoutEpoch",
    "wearout_experiment",
    "predict_onset",
    "TraceBuffer",
    "TraceEntry",
    "CaptureReport",
    "capture_experiment",
]

"""Gate-level netlist substrate: cells, libraries, circuits, BLIF/Verilog."""

from repro.netlist.blif import read_blif, write_blif, write_blif_file
from repro.netlist.cell import Cell
from repro.netlist.circuit import Circuit, Gate
from repro.netlist.codec import (
    CIRCUIT_SCHEMA,
    circuit_from_json,
    circuit_to_json,
)
from repro.netlist.library import (
    Library,
    builtin_library,
    lsi10k_like_library,
    unit_library,
)
from repro.netlist.verilogin import read_verilog
from repro.netlist.verilogout import write_verilog, write_verilog_file

__all__ = [
    "Cell",
    "Library",
    "unit_library",
    "lsi10k_like_library",
    "builtin_library",
    "Circuit",
    "Gate",
    "read_blif",
    "write_blif",
    "write_blif_file",
    "read_verilog",
    "write_verilog",
    "write_verilog_file",
    "CIRCUIT_SCHEMA",
    "circuit_to_json",
    "circuit_from_json",
]

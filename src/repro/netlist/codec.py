"""Faithful JSON round-trip for circuits.

BLIF export cannot do this job: it rewrites cells as truth tables and
drops pin delays, areas, load capacitances, and aging scales — everything
the timing model feeds on.  This codec preserves the *exact* in-memory
circuit: cells with their delay/area/load parameters, gate insertion
order (which fixes topological tie-breaking and therefore BDD variable
order downstream), input/output declaration order, and per-gate
``delay_scale``.  Round-tripping a circuit through
:func:`circuit_to_json` / :func:`circuit_from_json` yields a circuit on
which every deterministic analysis (SPCF, certificates, simulation)
produces bit-identical results — the property the parallel SPCF driver
relies on when shipping circuits to worker processes.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import NetlistError
from repro.netlist.cell import Cell
from repro.netlist.circuit import Circuit

#: Schema version of circuit documents.
CIRCUIT_SCHEMA = 1


def cell_to_json(cell: Cell) -> dict[str, Any]:
    """Serialize one library cell with all timing/power parameters."""
    return {
        "inputs": list(cell.inputs),
        "expression": cell.expression,
        "area": cell.area,
        "pin_delays": list(cell.pin_delays),
        "load_cap": cell.load_cap,
    }


def cell_from_json(name: str, data: Mapping[str, Any]) -> Cell:
    try:
        return Cell(
            name=name,
            inputs=tuple(data["inputs"]),
            expression=data["expression"],
            area=float(data["area"]),
            pin_delays=tuple(int(d) for d in data["pin_delays"]),
            load_cap=float(data.get("load_cap", 1.0)),
        )
    except KeyError as exc:
        raise NetlistError(
            f"cell {name!r} document missing field {exc.args[0]!r}"
        ) from None


def circuit_to_json(circuit: Circuit) -> dict[str, Any]:
    """Serialize a circuit to a JSON-ready dict (lossless)."""
    cells: dict[str, dict[str, Any]] = {}
    cell_objects: dict[str, Cell] = {}
    gates: list[dict[str, Any]] = []
    for gate in circuit.gates.values():
        cell = gate.cell
        seen = cell_objects.get(cell.name)
        if seen is None:
            cell_objects[cell.name] = cell
            cells[cell.name] = cell_to_json(cell)
        elif seen != cell:
            raise NetlistError(
                f"circuit {circuit.name!r} uses two different cells both "
                f"named {cell.name!r}; cannot serialize by name"
            )
        record: dict[str, Any] = {
            "name": gate.name,
            "cell": cell.name,
            "fanins": list(gate.fanins),
        }
        if gate.delay_scale != 1.0:
            record["delay_scale"] = gate.delay_scale
        gates.append(record)
    return {
        "schema": CIRCUIT_SCHEMA,
        "kind": "repro-circuit",
        "name": circuit.name,
        "inputs": list(circuit.inputs),
        "outputs": list(circuit.outputs),
        "cells": cells,
        "gates": gates,
    }


def circuit_from_json(data: Mapping[str, Any]) -> Circuit:
    """Rebuild a circuit from its document; validates the structure."""
    if data.get("kind") != "repro-circuit":
        raise NetlistError("document is not a repro-circuit")
    if data.get("schema") != CIRCUIT_SCHEMA:
        raise NetlistError(
            f"unsupported circuit schema {data.get('schema')!r} "
            f"(this build reads {CIRCUIT_SCHEMA})"
        )
    try:
        circuit = Circuit(data["name"], data["inputs"], data["outputs"])
        cells = {
            name: cell_from_json(name, cell_data)
            for name, cell_data in data["cells"].items()
        }
        for record in data["gates"]:
            cell_name = record["cell"]
            if cell_name not in cells:
                raise NetlistError(
                    f"gate {record.get('name')!r} references unknown cell "
                    f"{cell_name!r}"
                )
            circuit.add_gate(
                record["name"],
                cells[cell_name],
                record["fanins"],
                delay_scale=float(record.get("delay_scale", 1.0)),
            )
    except KeyError as exc:
        raise NetlistError(
            f"circuit document missing field {exc.args[0]!r}"
        ) from None
    circuit.validate()
    return circuit


__all__ = [
    "CIRCUIT_SCHEMA",
    "cell_to_json",
    "cell_from_json",
    "circuit_to_json",
    "circuit_from_json",
]

"""Cell libraries.

Two libraries ship with the reproduction:

* :func:`unit_library` — the delay model of the paper's worked example
  (Sec. 4.2): inverters cost 1 delay unit, 2-input gates cost 2.  The 2-bit
  comparator reproduces the paper's critical path delay of exactly 7 with it.
* :func:`lsi10k_like_library` — a richer library standing in for the
  LSI Logic lsi_10k library used in the paper's evaluation (see DESIGN.md
  substitution table), with per-pin delays, areas, and load capacitances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import LibraryError
from repro.netlist.cell import Cell


@dataclass
class Library:
    """A named collection of :class:`Cell` definitions."""

    name: str
    _cells: dict[str, Cell] = field(default_factory=dict)

    def add(self, cell: Cell) -> Cell:
        """Register a cell; raises on duplicate names."""
        if cell.name in self._cells:
            raise LibraryError(f"duplicate cell {cell.name!r} in library {self.name!r}")
        self._cells[cell.name] = cell
        return cell

    def get(self, name: str) -> Cell:
        """Look up a cell by name."""
        try:
            return self._cells[name]
        except KeyError:
            raise LibraryError(
                f"cell {name!r} not found in library {self.name!r}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self._cells

    def __iter__(self) -> Iterator[Cell]:
        return iter(self._cells.values())

    def __len__(self) -> int:
        return len(self._cells)

    @property
    def cell_names(self) -> tuple[str, ...]:
        return tuple(self._cells)

    def cells_with_inputs(self, n: int) -> list[Cell]:
        """All cells with exactly ``n`` input pins."""
        return [c for c in self._cells.values() if c.num_inputs == n]


def _pins(n: int) -> tuple[str, ...]:
    return tuple("abcdefgh"[:n])


def unit_library() -> Library:
    """The paper's illustrative delay model: INV = 1, 2-input gates = 2.

    Three-input gates cost 3 and the 2-to-1 multiplexer costs 2, keeping the
    delay of any gate equal to its logic 'level weight' in the example.
    """
    lib = Library("unit")
    lib.add(Cell("INV", ("a",), "~a", 1.0, (1,)))
    lib.add(Cell("BUF", ("a",), "a", 1.0, (1,)))
    for name, expr in [
        ("AND2", "a & b"),
        ("OR2", "a | b"),
        ("NAND2", "~(a & b)"),
        ("NOR2", "~(a | b)"),
        ("XOR2", "a ^ b"),
        ("XNOR2", "~(a ^ b)"),
    ]:
        lib.add(Cell(name, _pins(2), expr, 2.0, (2, 2)))
    for name, expr in [
        ("AND3", "a & b & c"),
        ("OR3", "a | b | c"),
        ("NAND3", "~(a & b & c)"),
        ("NOR3", "~(a | b | c)"),
    ]:
        lib.add(Cell(name, _pins(3), expr, 3.0, (3, 3, 3)))
    # MUX2: s selects between d0 (s=0) and d1 (s=1).
    lib.add(Cell("MUX2", ("s", "d0", "d1"), "(~s & d0) | (s & d1)", 3.0, (2, 2, 2)))
    lib.add(Cell("ZERO", (), "0", 0.0, ()))
    lib.add(Cell("ONE", (), "1", 0.0, ()))
    return lib


def lsi10k_like_library() -> Library:
    """A stand-in for the lsi_10k library (delays in ~0.01 ns units).

    Pin delays differ per pin (first pins are faster), exercising the
    pin-to-pin delay handling of the SPCF algorithms.  Areas are in
    equivalent-gate units; ``load_cap`` feeds the switching-power model.
    """
    lib = Library("lsi10k_like")
    lib.add(Cell("INV", ("a",), "~a", 1.0, (4,), load_cap=1.0))
    lib.add(Cell("BUF", ("a",), "a", 2.0, (6,), load_cap=1.0))
    two_in = [
        ("NAND2", "~(a & b)", 2.0, (6, 7), 1.1),
        ("NOR2", "~(a | b)", 2.0, (7, 8), 1.1),
        ("AND2", "a & b", 3.0, (8, 9), 1.2),
        ("OR2", "a | b", 3.0, (9, 10), 1.2),
        ("XOR2", "a ^ b", 5.0, (11, 12), 1.5),
        ("XNOR2", "~(a ^ b)", 5.0, (11, 12), 1.5),
    ]
    for name, expr, area, delays, cap in two_in:
        lib.add(Cell(name, _pins(2), expr, area, delays, load_cap=cap))
    three_in = [
        ("NAND3", "~(a & b & c)", 3.0, (8, 9, 10), 1.3),
        ("NOR3", "~(a | b | c)", 3.0, (9, 10, 11), 1.3),
        ("AND3", "a & b & c", 4.0, (10, 11, 12), 1.4),
        ("OR3", "a | b | c", 4.0, (11, 12, 13), 1.4),
    ]
    for name, expr, area, delays, cap in three_in:
        lib.add(Cell(name, _pins(3), expr, area, delays, load_cap=cap))
    lib.add(
        Cell("NAND4", _pins(4), "~(a & b & c & d)", 4.0, (10, 11, 12, 13), load_cap=1.4)
    )
    lib.add(
        Cell("NOR4", _pins(4), "~(a | b | c | d)", 4.0, (11, 12, 13, 14), load_cap=1.4)
    )
    lib.add(
        Cell("AOI21", _pins(3), "~((a & b) | c)", 3.0, (8, 9, 7), load_cap=1.2)
    )
    lib.add(
        Cell("OAI21", _pins(3), "~((a | b) & c)", 3.0, (8, 9, 7), load_cap=1.2)
    )
    lib.add(
        Cell(
            "AOI22",
            _pins(4),
            "~((a & b) | (c & d))",
            4.0,
            (9, 10, 9, 10),
            load_cap=1.3,
        )
    )
    lib.add(
        Cell(
            "OAI22",
            _pins(4),
            "~((a | b) & (c | d))",
            4.0,
            (9, 10, 9, 10),
            load_cap=1.3,
        )
    )
    lib.add(
        Cell(
            "MUX2",
            ("s", "d0", "d1"),
            "(~s & d0) | (s & d1)",
            4.0,
            (10, 8, 8),
            load_cap=1.3,
        )
    )
    lib.add(Cell("ZERO", (), "0", 0.0, ()))
    lib.add(Cell("ONE", (), "1", 0.0, ()))
    return lib


_BUILTIN = {"unit": unit_library, "lsi10k_like": lsi10k_like_library}


def builtin_library(name: str) -> Library:
    """Fetch a built-in library by name (``"unit"`` or ``"lsi10k_like"``)."""
    try:
        return _BUILTIN[name]()
    except KeyError:
        raise LibraryError(
            f"unknown built-in library {name!r}; choose from {sorted(_BUILTIN)}"
        ) from None

"""Structural Verilog reading.

Parses the gate-level subset emitted by :mod:`repro.netlist.verilogout` and
by typical synthesis flows: one module, ``input``/``output``/``wire``
declarations, and cell instances with named port connections::

    module top (a, b, y);
      input a;
      input b;
      output y;
      wire n1;
      NAND2 g0 (.a(a), .b(b), .y(n1));
      INV g1 (.a(n1), .y(y));
    endmodule

Behavioral constructs (``assign``, ``always``, expressions) are rejected
with a clear error — this is a netlist reader, not a Verilog front end.
Escaped identifiers (``\\name ``) are supported since the writer emits them
for the masking circuit's ``p$``/``e$`` nets.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.errors import NetlistError
from repro.netlist.circuit import Circuit
from repro.netlist.library import Library

_TOKEN_RE = re.compile(
    r"\\(?P<escaped>\S+)\s"  # escaped identifier (terminated by whitespace)
    r"|(?P<id>[A-Za-z_][A-Za-z_0-9$]*)"
    r"|(?P<sym>[(),.;])"
)


def _tokenize(text: str) -> list[str]:
    # strip comments
    text = re.sub(r"//[^\n]*", " ", text)
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.S)
    tokens = []
    pos = 0
    while pos < len(text):
        ch = text[pos]
        if ch.isspace():
            pos += 1
            continue
        m = _TOKEN_RE.match(text, pos)
        if not m:
            raise NetlistError(f"unexpected character {ch!r} in Verilog input")
        if m.lastgroup == "escaped":
            tokens.append(m.group("escaped"))
        else:
            tokens.append(m.group())
        pos = m.end()
    return tokens


class _Parser:
    def __init__(self, tokens: list[str], library: Library) -> None:
        self.tokens = tokens
        self.pos = 0
        self.library = library

    def peek(self) -> str | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self, expected: str | None = None) -> str:
        tok = self.peek()
        if tok is None:
            raise NetlistError("unexpected end of Verilog input")
        if expected is not None and tok != expected:
            raise NetlistError(f"expected {expected!r}, got {tok!r}")
        self.pos += 1
        return tok

    def name_list_until_semicolon(self) -> list[str]:
        names = []
        while True:
            names.append(self.take())
            tok = self.take()
            if tok == ";":
                return names
            if tok != ",":
                raise NetlistError(f"expected ',' or ';', got {tok!r}")

    def parse(self) -> Circuit:
        self.take("module")
        name = self.take()
        self.take("(")
        while self.take() != ")":
            pass
        self.take(";")
        circuit = Circuit(name)
        pending_outputs: list[str] = []
        while True:
            tok = self.take()
            if tok == "endmodule":
                break
            if tok == "input":
                for net in self.name_list_until_semicolon():
                    circuit.add_input(net)
            elif tok == "output":
                pending_outputs.extend(self.name_list_until_semicolon())
            elif tok == "wire":
                self.name_list_until_semicolon()
            elif tok in ("assign", "always", "reg"):
                raise NetlistError(
                    f"behavioral construct {tok!r}: only structural gate-level "
                    "Verilog is supported"
                )
            else:
                self._instance(circuit, cell_name=tok)
        for net in pending_outputs:
            circuit.add_output(net)
        circuit.validate()
        return circuit

    def _instance(self, circuit: Circuit, cell_name: str) -> None:
        cell = self.library.get(cell_name)
        self.take()  # instance name (ignored; output port names the net)
        self.take("(")
        bindings: dict[str, str] = {}
        while True:
            self.take(".")
            port = self.take()
            self.take("(")
            bindings[port] = self.take()
            self.take(")")
            tok = self.take()
            if tok == ")":
                break
            if tok != ",":
                raise NetlistError(f"expected ',' or ')', got {tok!r}")
        self.take(";")
        out_ports = [p for p in bindings if p not in cell.inputs]
        if len(out_ports) != 1:
            raise NetlistError(
                f"instance of {cell_name!r}: expected exactly one output "
                f"port, got {out_ports}"
            )
        missing = [p for p in cell.inputs if p not in bindings]
        if missing:
            raise NetlistError(f"instance of {cell_name!r}: unbound {missing}")
        fanins = tuple(bindings[p] for p in cell.inputs)
        circuit.add_gate(bindings[out_ports[0]], cell, fanins)


def read_verilog(source: str | Path, library: Library) -> Circuit:
    """Parse structural Verilog (text or a file path) into a circuit."""
    if isinstance(source, Path):
        text = source.read_text()
    elif "\n" not in source and source.endswith(".v"):
        text = Path(source).read_text()
    else:
        text = source
    return _Parser(_tokenize(text), library).parse()

"""Library cell model.

A :class:`Cell` is a single-output combinational primitive with

* a Boolean function over named input pins (an expression string),
* one integer *pin-to-pin delay* per input (the paper's ``delta(l -> z)``),
* an area, and a relative output load capacitance for the power model.

Derived artifacts — parsed expression, truth table, and the on-set/off-set
prime implicants needed by the SPCF recursion (paper Eqn. 1) — are computed
once per cell and cached.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import LibraryError
from repro.logic.cube import Cube
from repro.logic.expr import BoolExpr, parse_expr
from repro.logic.qm import primes_of_truth_table

_MAX_CELL_INPUTS = 10


@dataclass(frozen=True)
class Cell:
    """A combinational library cell.

    Parameters
    ----------
    name:
        Unique cell-type name, e.g. ``"NAND2"``.
    inputs:
        Ordered input pin names; order matters (pin delays align with it).
    expression:
        Boolean function over the pin names, e.g. ``"~(a & b)"``.
    area:
        Cell area in library units.
    pin_delays:
        Integer pin-to-pin delays, one per input pin.
    load_cap:
        Relative output capacitance used by the switching-power model.
    """

    name: str
    inputs: tuple[str, ...]
    expression: str
    area: float
    pin_delays: tuple[int, ...]
    load_cap: float = 1.0

    def __post_init__(self) -> None:
        if not self.inputs and self.expression not in ("0", "1"):
            raise LibraryError(f"cell {self.name!r}: zero-input cell must be constant")
        if len(self.inputs) > _MAX_CELL_INPUTS:
            raise LibraryError(
                f"cell {self.name!r}: {len(self.inputs)} inputs exceeds "
                f"{_MAX_CELL_INPUTS}"
            )
        if len(set(self.inputs)) != len(self.inputs):
            raise LibraryError(f"cell {self.name!r}: duplicate pin names")
        if len(self.pin_delays) != len(self.inputs):
            raise LibraryError(
                f"cell {self.name!r}: {len(self.pin_delays)} delays for "
                f"{len(self.inputs)} pins"
            )
        if any(d < 0 for d in self.pin_delays):
            raise LibraryError(f"cell {self.name!r}: negative pin delay")
        used = self.expr.variables()
        extra = used - set(self.inputs)
        if extra:
            raise LibraryError(
                f"cell {self.name!r}: expression uses unknown pins {sorted(extra)}"
            )

    # ------------------------------------------------------ derived (cached)

    @property
    def expr(self) -> BoolExpr:
        """Parsed Boolean expression (cached)."""
        cached = _expr_cache.get(self._key)
        if cached is None:
            cached = parse_expr(self.expression)
            _expr_cache[self._key] = cached
        return cached

    @property
    def _key(self) -> tuple[str, tuple[str, ...], str]:
        return (self.name, self.inputs, self.expression)

    @property
    def num_inputs(self) -> int:
        return len(self.inputs)

    def truth_table(self) -> tuple[bool, ...]:
        """Output for every input minterm; pin 0 is the MSB of the index."""
        cached = _tt_cache.get(self._key)
        if cached is None:
            n = self.num_inputs
            expr = self.expr
            rows = []
            for idx in range(1 << n):
                assignment = {
                    pin: bool((idx >> (n - 1 - i)) & 1)
                    for i, pin in enumerate(self.inputs)
                }
                rows.append(expr.evaluate(assignment))
            cached = tuple(rows)
            _tt_cache[self._key] = cached
        return cached

    def primes(self) -> tuple[tuple[Cube, ...], tuple[Cube, ...]]:
        """``(on_set_primes, off_set_primes)`` over the input pins (cached)."""
        cached = _primes_cache.get(self._key)
        if cached is None:
            on, off = primes_of_truth_table(self.truth_table())
            cached = (tuple(on), tuple(off))
            _primes_cache[self._key] = cached
        return cached

    def evaluate(self, pin_values: Mapping[str, bool]) -> bool:
        """Evaluate the cell function for the given pin values."""
        return self.expr.evaluate(pin_values)

    def evaluate_seq(self, values: Sequence[bool]) -> bool:
        """Evaluate with positional pin values (matching ``self.inputs``)."""
        if len(values) != self.num_inputs:
            raise LibraryError(
                f"cell {self.name!r}: got {len(values)} values for "
                f"{self.num_inputs} pins"
            )
        idx = 0
        for v in values:
            idx = (idx << 1) | int(bool(v))
        return self.truth_table()[idx]

    def max_delay(self) -> int:
        """Largest pin-to-pin delay (0 for constant cells)."""
        return max(self.pin_delays, default=0)


_expr_cache: dict[tuple, BoolExpr] = {}
_tt_cache: dict[tuple, tuple[bool, ...]] = {}
_primes_cache: dict[tuple, tuple[tuple[Cube, ...], tuple[Cube, ...]]] = {}

"""Structural Verilog emission.

The masking flow is BLIF-centric, but emitting gate-level Verilog makes the
synthesized designs easy to inspect with standard tooling.  Only writing is
supported; reading mapped designs goes through BLIF.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.netlist.circuit import Circuit

_ID_RE = re.compile(r"[A-Za-z_][A-Za-z_0-9]*\Z")


def _escape(net: str) -> str:
    """Escape net names that are not plain Verilog identifiers."""
    if _ID_RE.match(net):
        return net
    return f"\\{net} "


def write_verilog(circuit: Circuit) -> str:
    """Serialize a mapped circuit as structural Verilog."""
    ports = [_escape(n) for n in (*circuit.inputs, *circuit.outputs)]
    lines = [f"module {_escape(circuit.name)} ({', '.join(ports)});"]
    for net in circuit.inputs:
        lines.append(f"  input {_escape(net)};")
    for net in circuit.outputs:
        lines.append(f"  output {_escape(net)};")
    internal = [
        name
        for name in circuit.topo_order()
        if name not in set(circuit.outputs)
    ]
    for net in internal:
        lines.append(f"  wire {_escape(net)};")
    for index, name in enumerate(circuit.topo_order()):
        gate = circuit.gates[name]
        conns = [f".{pin}({_escape(net)})" for pin, net in zip(gate.cell.inputs, gate.fanins)]
        conns.append(f".y({_escape(name)})")
        lines.append(f"  {gate.cell.name} g{index} ({', '.join(conns)});")
    lines.append("endmodule")
    return "\n".join(lines) + "\n"


def write_verilog_file(circuit: Circuit, path: str | Path) -> None:
    """Write :func:`write_verilog` output to ``path``."""
    Path(path).write_text(write_verilog(circuit))

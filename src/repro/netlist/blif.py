"""BLIF reading and writing.

Supports the subset of Berkeley BLIF used by logic-synthesis benchmarks:

* ``.model`` / ``.inputs`` / ``.outputs`` / ``.end`` with ``\\`` continuations,
* ``.names`` logic tables (single-output covers, ``1`` or ``0`` output rows),
* ``.gate`` instances bound to a :class:`~repro.netlist.library.Library`.

``.names`` nodes become per-shape LUT cells with a configurable delay rule
(default: ``4 + 2 * num_inputs`` per pin, a crude fanin-loaded model), so
technology-independent BLIF can still be timed; mapped flows use ``.gate``.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Iterable

from repro.errors import BlifError
from repro.logic.cover import Cover
from repro.logic.cube import Cube
from repro.netlist.cell import Cell
from repro.netlist.circuit import Circuit
from repro.netlist.library import Library

DelayRule = Callable[[int], int]


def _default_lut_delay(num_inputs: int) -> int:
    return 4 + 2 * num_inputs


_lut_cells: dict[tuple, Cell] = {}


def _lut_cell(
    rows: tuple[tuple[str, str], ...], num_inputs: int, delay_rule: DelayRule
) -> Cell:
    """Build (and cache) a LUT cell for a ``.names`` cover."""
    key = (rows, num_inputs, delay_rule(num_inputs) if num_inputs else 0)
    cell = _lut_cells.get(key)
    if cell is not None:
        return cell
    pins = tuple(f"i{k}" for k in range(num_inputs))
    if num_inputs == 0:
        value = rows[0][1] if rows else "0"
        cell = Cell(f"CONST{value}", (), value, 0.0, ())
    else:
        out_values = {out for _, out in rows}
        if len(out_values) > 1:
            raise BlifError(".names mixes 1 and 0 output rows")
        polarity = rows[0][1] if rows else "1"
        cover = Cover(pins, tuple(Cube.from_string(pat) for pat, _ in rows))
        expr = cover.to_expr_string()
        if polarity == "0":
            expr = f"~({expr})"
        delay = delay_rule(num_inputs)
        cell = Cell(
            f"LUT{num_inputs}_{abs(hash((rows,))) % (1 << 32):08x}",
            pins,
            expr,
            float(num_inputs),
            (delay,) * num_inputs,
        )
    _lut_cells[key] = cell
    return cell


def _logical_lines(text: str) -> Iterable[str]:
    pending = ""
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].rstrip()
        if not line:
            continue
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        yield pending + line
        pending = ""
    if pending:
        yield pending


def read_blif(
    source: str | Path,
    library: Library | None = None,
    delay_rule: DelayRule = _default_lut_delay,
    validate: bool = True,
) -> Circuit:
    """Parse BLIF text (or a file path) into a :class:`Circuit`.

    ``library`` is required when the file contains ``.gate`` lines.
    ``validate=False`` skips the structural check so that broken netlists
    (loops, dangling nets) can still be loaded for linting.
    """
    if isinstance(source, Path):
        text = source.read_text()
    elif "\n" not in source and source.endswith(".blif"):
        text = Path(source).read_text()
    else:
        text = source

    circuit: Circuit | None = None
    names_node: tuple[list[str], list[tuple[str, str]]] | None = None
    pending_names: list[tuple[list[str], list[tuple[str, str]]]] = []

    def flush_names() -> None:
        nonlocal names_node
        if names_node is not None:
            pending_names.append(names_node)
            names_node = None

    for line in _logical_lines(text):
        tokens = line.split()
        head = tokens[0]
        if head == ".model":
            flush_names()
            if circuit is not None:
                raise BlifError("multiple .model sections are not supported")
            circuit = Circuit(tokens[1] if len(tokens) > 1 else "top")
        elif head == ".inputs":
            flush_names()
            if circuit is None:
                raise BlifError(".inputs before .model")
            for net in tokens[1:]:
                circuit.add_input(net)
        elif head == ".outputs":
            flush_names()
            if circuit is None:
                raise BlifError(".outputs before .model")
            for net in tokens[1:]:
                circuit.add_output(net)
        elif head == ".names":
            flush_names()
            if circuit is None:
                raise BlifError(".names before .model")
            if len(tokens) < 2:
                raise BlifError(".names needs at least an output net")
            names_node = (tokens[1:], [])
        elif head == ".gate":
            flush_names()
            if circuit is None:
                raise BlifError(".gate before .model")
            if library is None:
                raise BlifError(".gate requires a cell library")
            cell = library.get(tokens[1])
            bindings: dict[str, str] = {}
            for tok in tokens[2:]:
                if "=" not in tok:
                    raise BlifError(f"malformed .gate binding {tok!r}")
                pin, net = tok.split("=", 1)
                bindings[pin] = net
            out_pins = [p for p in bindings if p not in cell.inputs]
            if len(out_pins) != 1:
                raise BlifError(
                    f".gate {tokens[1]}: expected exactly one output binding, "
                    f"got {out_pins}"
                )
            missing = [p for p in cell.inputs if p not in bindings]
            if missing:
                raise BlifError(f".gate {tokens[1]}: unbound pins {missing}")
            fanins = tuple(bindings[p] for p in cell.inputs)
            circuit.add_gate(bindings[out_pins[0]], cell, fanins)
        elif head == ".end":
            flush_names()
        elif head.startswith("."):
            raise BlifError(f"unsupported BLIF construct {head!r}")
        else:
            if names_node is None:
                raise BlifError(f"cover row outside .names: {line!r}")
            signals, rows = names_node
            num_in = len(signals) - 1
            if num_in == 0:
                if len(tokens) != 1 or tokens[0] not in ("0", "1"):
                    raise BlifError(f"bad constant row {line!r}")
                rows.append(("", tokens[0]))
            else:
                if len(tokens) != 2 or len(tokens[0]) != num_in:
                    raise BlifError(f"bad cover row {line!r}")
                rows.append((tokens[0], tokens[1]))
    flush_names()

    if circuit is None:
        raise BlifError("no .model section found")

    for signals, rows in pending_names:
        *in_nets, out_net = signals
        cell = _lut_cell(tuple(rows), len(in_nets), delay_rule)
        circuit.add_gate(out_net, cell, tuple(in_nets))

    if validate:
        circuit.validate()
    return circuit


def write_blif(circuit: Circuit) -> str:
    """Serialize a mapped circuit to BLIF ``.gate`` form."""
    lines = [f".model {circuit.name}"]
    lines.append(".inputs " + " ".join(circuit.inputs))
    lines.append(".outputs " + " ".join(circuit.outputs))
    for name in circuit.topo_order():
        gate = circuit.gates[name]
        binds = " ".join(
            f"{pin}={net}" for pin, net in zip(gate.cell.inputs, gate.fanins)
        )
        sep = " " if binds else ""
        lines.append(f".gate {gate.cell.name} {binds}{sep}y={name}")
    lines.append(".end")
    return "\n".join(lines) + "\n"


def write_blif_file(circuit: Circuit, path: str | Path) -> None:
    """Write :func:`write_blif` output to ``path``."""
    Path(path).write_text(write_blif(circuit))

"""Gate-level combinational circuits.

A :class:`Circuit` is a DAG of :class:`Gate` instances over named nets.  Every
gate drives exactly one net, named after the gate, matching the single-output
cells of :mod:`repro.netlist.cell`.  Primary inputs are nets with no driver;
primary outputs name nets (gate outputs or, degenerately, inputs).

The class owns structural validation (arity, dangling nets, cycles) and the
derived views every downstream pass needs: topological order, fanout maps,
fanin cones, and per-gate pin delays with aging scale factors applied.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from types import MappingProxyType
from typing import Iterable, Iterator, Mapping

from repro.errors import NetlistError
from repro.netlist.cell import Cell


@dataclass(frozen=True)
class Gate:
    """One instantiated cell: ``name`` is also the driven net."""

    name: str
    cell: Cell
    fanins: tuple[str, ...]
    delay_scale: float = 1.0

    def __post_init__(self) -> None:
        if len(self.fanins) != self.cell.num_inputs:
            raise NetlistError(
                f"gate {self.name!r}: {len(self.fanins)} fanins for cell "
                f"{self.cell.name!r} with {self.cell.num_inputs} pins"
            )
        if self.delay_scale < 1.0:
            raise NetlistError(
                f"gate {self.name!r}: delay scale {self.delay_scale} < 1 "
                "(aging can only slow gates down)"
            )

    def pin_delay(self, pin: int) -> int:
        """Scaled integer delay from input ``pin`` to the output."""
        return self.pin_delays()[pin]

    def pin_delays(self) -> tuple[int, ...]:
        """All scaled pin delays (memoized; the dataclass is frozen)."""
        cached = self.__dict__.get("_pin_delays")
        if cached is None:
            cached = tuple(
                int(round(d * self.delay_scale)) for d in self.cell.pin_delays
            )
            object.__setattr__(self, "_pin_delays", cached)
        return cached


class Circuit:
    """A combinational logic circuit (a DAG of gates over named nets)."""

    def __init__(
        self,
        name: str,
        inputs: Iterable[str] = (),
        outputs: Iterable[str] = (),
    ) -> None:
        self.name = name
        self._inputs: list[str] = []
        self._input_set: set[str] = set()
        self._outputs: list[str] = []
        self._gates: dict[str, Gate] = {}
        self._gates_view: Mapping[str, Gate] = MappingProxyType(self._gates)
        self._topo: list[str] | None = None
        self._fanouts: dict[str, list[tuple[str, int]]] | None = None
        self._version = 0
        for net in inputs:
            self.add_input(net)
        for net in outputs:
            self.add_output(net)

    # ------------------------------------------------------------- structure

    @property
    def inputs(self) -> tuple[str, ...]:
        """Primary input net names, in declaration order."""
        return tuple(self._inputs)

    @property
    def outputs(self) -> tuple[str, ...]:
        """Primary output net names, in declaration order."""
        return tuple(self._outputs)

    @property
    def gates(self) -> Mapping[str, Gate]:
        """Read-only *live* view of gates by output net name.

        A cached :class:`types.MappingProxyType` over the internal dict:
        O(1) to obtain (no copy per access) and always current.  Callers
        needing a snapshot should take ``dict(circuit.gates)`` explicitly.
        """
        return self._gates_view

    @property
    def num_gates(self) -> int:
        return len(self._gates)

    def add_input(self, net: str) -> None:
        """Declare a primary input net."""
        if net in self._input_set:
            raise NetlistError(f"duplicate input {net!r}")
        if net in self._gates:
            raise NetlistError(f"input {net!r} clashes with a gate output")
        self._inputs.append(net)
        self._input_set.add(net)
        self._invalidate()

    def add_output(self, net: str) -> None:
        """Declare a primary output (the net may be defined later)."""
        if net in self._outputs:
            raise NetlistError(f"duplicate output {net!r}")
        self._outputs.append(net)
        self._version += 1

    def add_gate(
        self,
        name: str,
        cell: Cell,
        fanins: Iterable[str],
        delay_scale: float = 1.0,
    ) -> Gate:
        """Instantiate ``cell`` driving net ``name`` from the given fanins."""
        if name in self._gates:
            raise NetlistError(f"duplicate gate {name!r}")
        if name in self._input_set:
            raise NetlistError(f"gate {name!r} clashes with a primary input")
        gate = Gate(name, cell, tuple(fanins), delay_scale)
        self._gates[name] = gate
        self._invalidate()
        return gate

    def remove_gate(self, name: str) -> None:
        """Remove a gate (callers must keep the circuit consistent)."""
        if name not in self._gates:
            raise NetlistError(f"no gate {name!r} to remove")
        del self._gates[name]
        self._invalidate()

    def replace_gate(self, gate: Gate) -> None:
        """Swap in a new :class:`Gate` for an existing net."""
        if gate.name not in self._gates:
            raise NetlistError(f"no gate {gate.name!r} to replace")
        self._gates[gate.name] = gate
        self._invalidate()

    def has_net(self, net: str) -> bool:
        """True iff ``net`` is a primary input or a gate output."""
        return net in self._input_set or net in self._gates

    def is_input(self, net: str) -> bool:
        return net in self._input_set

    def gate(self, net: str) -> Gate:
        """The gate driving ``net``; raises for inputs/undefined nets."""
        try:
            return self._gates[net]
        except KeyError:
            raise NetlistError(f"no gate drives net {net!r}") from None

    def nets(self) -> Iterator[str]:
        """All nets: inputs first, then gate outputs in insertion order."""
        yield from self._inputs
        yield from self._gates

    @property
    def version(self) -> int:
        """Monotone counter bumped on every structural change.

        Derived artifacts (e.g. :class:`repro.engine.CompiledCircuit`) cache
        against this to detect staleness without hashing the netlist.
        """
        return self._version

    def _invalidate(self) -> None:
        self._topo = None
        self._fanouts = None
        self._version += 1

    # ------------------------------------------------------------ validation

    def validate(self) -> None:
        """Check structural invariants; raises :class:`NetlistError`.

        Verifies that every fanin is driven, outputs exist, and the gate
        graph is acyclic (by computing the topological order).
        """
        for gate in self._gates.values():
            for net in gate.fanins:
                if not self.has_net(net):
                    raise NetlistError(
                        f"gate {gate.name!r} reads undefined net {net!r}"
                    )
        for net in self._outputs:
            if not self.has_net(net):
                raise NetlistError(f"output {net!r} is not driven")
        self.topo_order()  # raises on cycles

    # ---------------------------------------------------------- derived maps

    def topo_order(self) -> list[str]:
        """Gate names in topological (fanin-before-fanout) order."""
        if self._topo is not None:
            return self._topo
        indeg: dict[str, int] = {}
        dependents: dict[str, list[str]] = {}
        for gate in self._gates.values():
            count = 0
            for net in gate.fanins:
                if net in self._gates:
                    count += 1
                    dependents.setdefault(net, []).append(gate.name)
            indeg[gate.name] = count
        ready = [n for n, d in indeg.items() if d == 0]
        order: list[str] = []
        while ready:
            net = ready.pop()
            order.append(net)
            for dep in dependents.get(net, ()):
                indeg[dep] -= 1
                if indeg[dep] == 0:
                    ready.append(dep)
        if len(order) != len(self._gates):
            cyclic = sorted(n for n, d in indeg.items() if d > 0)
            raise NetlistError(f"circuit {self.name!r} has a cycle near {cyclic[:5]}")
        self._topo = order
        return order

    def fanouts(self) -> dict[str, list[tuple[str, int]]]:
        """Map net -> list of ``(gate_name, pin_index)`` readers."""
        if self._fanouts is None:
            out: dict[str, list[tuple[str, int]]] = {n: [] for n in self.nets()}
            for gate in self._gates.values():
                for pin, net in enumerate(gate.fanins):
                    out.setdefault(net, []).append((gate.name, pin))
            self._fanouts = out
        return self._fanouts

    def fanin_cone(self, net: str) -> set[str]:
        """Gate names in the transitive fanin of ``net`` (including it)."""
        if not self.has_net(net):
            raise NetlistError(f"unknown net {net!r}")
        cone: set[str] = set()
        stack = [net]
        while stack:
            n = stack.pop()
            if n in self._input_set or n in cone:
                continue
            cone.add(n)
            stack.extend(self._gates[n].fanins)
        return cone

    def cone_inputs(self, net: str) -> set[str]:
        """Primary inputs in the transitive fanin of ``net``."""
        if net in self._input_set:
            return {net}
        pis: set[str] = set()
        seen: set[str] = set()
        stack = [net]
        while stack:
            n = stack.pop()
            if n in seen:
                continue
            seen.add(n)
            if n in self._input_set:
                pis.add(n)
            else:
                stack.extend(self._gates[n].fanins)
        return pis

    def level_map(self) -> dict[str, int]:
        """Logic depth of every net (inputs are level 0)."""
        levels = {net: 0 for net in self._inputs}
        for name in self.topo_order():
            gate = self._gates[name]
            levels[name] = 1 + max((levels[f] for f in gate.fanins), default=0)
        return levels

    def depth(self) -> int:
        """Maximum logic depth over all nets."""
        levels = self.level_map()
        return max(levels.values(), default=0)

    # ------------------------------------------------------------- estimates

    def area(self) -> float:
        """Total cell area."""
        return sum(g.cell.area for g in self._gates.values())

    # ----------------------------------------------------------------- copies

    def copy(self, name: str | None = None) -> "Circuit":
        """Structural copy (gates are shared frozen values)."""
        c = Circuit(name or self.name, self._inputs, self._outputs)
        for gate in self._gates.values():
            c._gates[gate.name] = gate
        c._invalidate()
        return c

    def with_delay_scales(self, scales: Mapping[str, float]) -> "Circuit":
        """Copy with aging multipliers applied to the named gates."""
        c = self.copy()
        for name, scale in scales.items():
            gate = c.gate(name)
            c._gates[name] = replace(gate, delay_scale=scale)
        c._invalidate()
        return c

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Circuit({self.name!r}, {len(self._inputs)} in, "
            f"{len(self._outputs)} out, {len(self._gates)} gates)"
        )

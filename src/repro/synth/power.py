"""Switching-power estimation.

Dynamic power of a CMOS gate is proportional to the switching activity of
its output net times the capacitance it drives.  Under the standard
temporal-independence model the activity of a net with signal probability
``p`` is ``2 p (1 - p)`` per cycle.  Signal probabilities are computed

* exactly, from the BDD model count of every net's global function
  (``method="bdd"``, default — cheap for control-logic cones), or
* statistically, from bit-parallel random simulation (``method="sim"``).

Only *relative* power matters for the paper's Table 2 (overhead of the
masking circuit versus the original), which this model captures.
"""

from __future__ import annotations

from fractions import Fraction

from repro.bdd.manager import BddManager
from repro.errors import SimulationError
from repro.netlist.circuit import Circuit
from repro.sim.logicsim import random_patterns, pack_patterns, simulate_words
from repro.spcf.timedfunc import expr_to_function


def signal_probabilities_bdd(circuit: Circuit) -> dict[str, Fraction]:
    """Exact probability of each net being 1 under uniform random inputs."""
    mgr = BddManager(circuit.inputs)
    fns = {net: mgr.var(net) for net in circuit.inputs}
    n = len(circuit.inputs)
    probs: dict[str, Fraction] = {net: Fraction(1, 2) for net in circuit.inputs}
    for name in circuit.topo_order():
        gate = circuit.gates[name]
        env = {
            pin: fns[f] for pin, f in zip(gate.cell.inputs, gate.fanins)
        }
        fn = expr_to_function(gate.cell.expr, env, mgr)
        fns[name] = fn
        probs[name] = Fraction(fn.count(n), 1 << n) if n else Fraction(int(fn.is_true))
    return probs


def signal_probabilities_sim(
    circuit: Circuit, vectors: int = 2048, seed: int = 7
) -> dict[str, Fraction]:
    """Monte-Carlo signal probabilities via bit-parallel simulation."""
    if vectors <= 0:
        raise SimulationError("need a positive vector count")
    words, width = pack_patterns(
        circuit.inputs, random_patterns(circuit.inputs, vectors, seed=seed)
    )
    values = simulate_words(circuit, words, width)
    return {
        net: Fraction(bin(word).count("1"), width) for net, word in values.items()
    }


def switching_power(
    circuit: Circuit, method: str = "bdd", vectors: int = 2048
) -> float:
    """Total switching power: ``sum(load_cap * 2 p (1-p))`` over gate outputs."""
    if method == "bdd":
        probs = signal_probabilities_bdd(circuit)
    elif method == "sim":
        probs = signal_probabilities_sim(circuit, vectors=vectors)
    else:
        raise SimulationError(f"unknown power method {method!r}")
    total = 0.0
    for name, gate in circuit.gates.items():
        p = float(probs[name])
        total += gate.cell.load_cap * 2.0 * p * (1.0 - p)
    return total

"""Technology mapping of a :class:`TechNetwork` onto a cell library.

Every node is lowered through :mod:`repro.synth.decompose`, picking whichever
polarity (on-set SOP, or inverted off-set SOP) needs fewer literals — a
simple area heuristic that mirrors what a commercial mapper's two-level view
would do.  Node output nets keep their technology-independent names so that
mapped circuits stay comparable with their specs (equivalence is
property-tested in ``tests/synth``).
"""

from __future__ import annotations

from repro.logic.cover import Cover
from repro.netlist.circuit import Circuit
from repro.netlist.library import Library
from repro.synth.decompose import GateBuilder, decompose_cover
from repro.synth.technet import TechNetwork

_trial_cache: dict[tuple[int, Cover, bool], tuple[int, float]] = {}


def trial_cost(
    cover: Cover, library: Library, inverted: bool = False
) -> tuple[int, float]:
    """Mapped ``(delay, area)`` of a cover, measured on a scratch circuit.

    Used to choose between implementing a node as its on-set SOP or as the
    complement of its off-set SOP — the criterion is the *mapped* cost after
    factoring, not the raw literal count.
    """
    key = (id(library), cover, inverted)
    cached = _trial_cache.get(key)
    if cached is not None:
        return cached
    scratch = Circuit("scratch", inputs=cover.names)
    builder = GateBuilder(scratch, library, "t_")
    net = decompose_cover(cover, builder, invert_output=inverted)
    if scratch.num_gates == 0:
        result = (0, 0.0)
    else:
        from repro.sta.timing import analyze

        report = analyze(scratch, target=0)
        result = (report.arrival.get(net, 0), scratch.area())
    _trial_cache[key] = result
    return result


def map_technet(
    network: TechNetwork,
    library: Library,
    name: str | None = None,
    prefix: str = "m_",
) -> Circuit:
    """Map ``network`` to gates from ``library``.

    The returned circuit has the same input/output names as the network.
    Internal fresh nets are prefixed with ``prefix`` to avoid collisions
    when the result is merged into a larger design.
    """
    network.validate()
    circuit = Circuit(name or network.name, network.inputs, network.outputs)
    builder = GateBuilder(circuit, library, prefix)
    for node_name in network.topo_order():
        node = network.node(node_name)
        special = _match_special_cell(node, library)
        if special is not None:
            cell_name, fanins = special
            circuit.add_gate(node_name, library.get(cell_name), fanins)
            continue
        use_off = trial_cost(node.off_cover, library, inverted=True) < trial_cost(
            node.on_cover, library, inverted=False
        )
        cover = node.off_cover if use_off else node.on_cover
        result = decompose_cover(cover, builder, invert_output=use_off)
        if not builder.claim_as(result, node_name):
            builder.buffer_as(result, node_name)
    circuit.validate()
    return circuit


def _match_special_cell(node, library: Library):
    """Recognize 1–2 input nodes that map to a single library cell.

    XOR-shaped functions have no compact SOP, so pattern-matching them to
    XOR2/XNOR2 cells (and identities to BUF/INV) keeps mapped depth and area
    proportional to the technology-independent structure.
    """
    width = node.num_fanins
    if width == 0 or width > 2:
        return None
    table = []
    for idx in range(1 << width):
        bits = [(idx >> (width - 1 - i)) & 1 for i in range(width)]
        table.append(any(c.contains_minterm(bits) for c in node.on_cover.cubes))
    table = tuple(table)
    if width == 1:
        if table == (False, True) and "BUF" in library:
            return ("BUF", node.fanins)
        if table == (True, False) and "INV" in library:
            return ("INV", node.fanins)
        return None
    patterns = {
        (False, True, True, False): "XOR2",
        (True, False, False, True): "XNOR2",
        (False, False, False, True): "AND2",
        (False, True, True, True): "OR2",
        (True, True, True, False): "NAND2",
        (True, False, False, False): "NOR2",
    }
    cell_name = patterns.get(table)
    if cell_name and cell_name in library:
        return (cell_name, node.fanins)
    return None


def remove_buffers(circuit: Circuit) -> Circuit:
    """Collapse BUF gates by rewiring readers (outputs keep their buffer).

    Mapping inserts a buffer per node to preserve node names; this cleanup
    removes the ones that are not protecting a primary-output name.
    """
    out = Circuit(circuit.name, circuit.inputs, circuit.outputs)
    # Resolve chains of buffers to their ultimate source.
    source: dict[str, str] = {}

    def resolve(net: str) -> str:
        seen = []
        while True:
            if net in source:
                net = source[net]
                continue
            if net in circuit.gates and net not in circuit.outputs:
                gate = circuit.gates[net]
                if gate.cell.name == "BUF":
                    seen.append(net)
                    net = gate.fanins[0]
                    continue
            break
        for s in seen:
            source[s] = net
        return net

    for name in circuit.topo_order():
        gate = circuit.gates[name]
        if gate.cell.name == "BUF" and name not in circuit.outputs:
            continue
        out.add_gate(
            name,
            gate.cell,
            tuple(resolve(f) for f in gate.fanins),
            delay_scale=gate.delay_scale,
        )
    out.validate()
    return out


def mapped_stats(circuit: Circuit) -> dict[str, float]:
    """Quick area/depth statistics for a mapped circuit."""
    from repro.sta.timing import analyze

    report = analyze(circuit, target=0)
    return {
        "gates": float(circuit.num_gates),
        "area": circuit.area(),
        "delay": float(report.critical_delay),
    }

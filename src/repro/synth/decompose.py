"""Decomposition of covers and factored expressions into library gates.

Covers are factored algebraically (:mod:`repro.logic.factoring`) and lowered
through :func:`decompose_expr`, which

* pushes negations down to the literals (De Morgan), so an inverted cover
  costs inverters at the leaves instead of one slow output inverter,
* flattens associative AND/OR chains and rebuilds them as balanced trees,
* structurally hashes every created gate (commutative inputs normalized), so
  shared subexpressions — e.g. a kernel used by several nodes of the masking
  network — are instantiated once.

Balanced trees plus factoring are what let the mapped masking circuit meet
the paper's >= 20% slack requirement.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import SynthesisError
from repro.logic.cover import Cover
from repro.logic.expr import BoolExpr
from repro.logic.factoring import factor
from repro.netlist.circuit import Circuit
from repro.netlist.library import Library

_SYMMETRIC_CELLS = {"AND2", "OR2", "NAND2", "NOR2", "XOR2", "XNOR2"}


class GateBuilder:
    """Helper appending library gates to a circuit with fresh net names.

    All construction goes through :meth:`emit`, which structurally hashes
    ``(cell, fanins)`` so identical gates are shared.
    """

    def __init__(self, circuit: Circuit, library: Library, prefix: str) -> None:
        self.circuit = circuit
        self.library = library
        self.prefix = prefix
        self._counter = 0
        self._strash: dict[tuple[str, tuple[str, ...]], str] = {}
        self._created: set[str] = set()
        self._read: set[str] = set()

    def fresh(self, tag: str) -> str:
        """A new unique net name."""
        while True:
            name = f"{self.prefix}{tag}_{self._counter}"
            self._counter += 1
            if not self.circuit.has_net(name):
                return name

    def emit(self, cell_name: str, fanins: Sequence[str], tag: str) -> str:
        """Instantiate (or reuse) a gate; returns its output net."""
        fanins = tuple(fanins)
        if cell_name in _SYMMETRIC_CELLS:
            fanins = tuple(sorted(fanins))
        key = (cell_name, fanins)
        cached = self._strash.get(key)
        if cached is not None:
            return cached
        out = self.fresh(tag)
        self.circuit.add_gate(out, self.library.get(cell_name), fanins)
        self._strash[key] = out
        self._created.add(out)
        self._read.update(fanins)
        return out

    def claim_as(self, net: str, name: str) -> bool:
        """Rename a freshly-built internal net to ``name`` (no buffer needed).

        Only nets created by this builder, not yet claimed, and not read by
        any other gate can be renamed; returns ``False`` when the caller
        should fall back to a buffer.
        """
        if (
            net not in self._created
            or net in self._read
            or self.circuit.has_net(name)
        ):
            return False
        gate = self.circuit.gate(net)
        self.circuit.remove_gate(net)
        self.circuit.add_gate(name, gate.cell, gate.fanins, gate.delay_scale)
        for key, value in self._strash.items():
            if value == net:
                self._strash[key] = name
        self._created.discard(net)
        return True

    def inverter(self, net: str) -> str:
        """Net carrying ``~net`` (shared per source net)."""
        return self.emit("INV", (net,), "inv")

    def literal(self, net: str, polarity: bool) -> str:
        """Net carrying the literal ``net`` or ``~net``."""
        return net if polarity else self.inverter(net)

    def constant(self, value: bool) -> str:
        """Net tied to constant 0 or 1."""
        return self.emit("ONE" if value else "ZERO", (), "const")

    def _tree(self, nets: Sequence[str], cell_name: str, tag: str) -> str:
        if not nets:
            raise SynthesisError(f"empty {tag} tree")
        level = list(nets)
        while len(level) > 1:
            nxt = []
            for i in range(0, len(level) - 1, 2):
                nxt.append(self.emit(cell_name, (level[i], level[i + 1]), tag))
            if len(level) % 2:
                nxt.append(level[-1])
            level = nxt
        return level[0]

    def and_tree(self, nets: Sequence[str]) -> str:
        """Balanced AND of the given nets (a single net passes through)."""
        return self._tree(nets, "AND2", "and")

    def or_tree(self, nets: Sequence[str]) -> str:
        """Balanced OR of the given nets."""
        return self._tree(nets, "OR2", "or")

    def mux(self, select: str, when0: str, when1: str) -> str:
        """2-to-1 multiplexer: ``select ? when1 : when0``."""
        return self.emit("MUX2", (select, when0, when1), "mux")

    def buffer_as(self, net: str, out_name: str) -> str:
        """Drive the named net from ``net`` through a buffer."""
        self.circuit.add_gate(out_name, self.library.get("BUF"), (net,))
        self._read.add(net)
        return out_name


def _gather(
    expr: BoolExpr, negate: bool, op: str, out: list[tuple[BoolExpr, bool]]
) -> None:
    """Flatten nested associative chains of ``op`` under negation push-down."""
    if expr.op == "not":
        _gather(expr.args[0], not negate, op, out)
        return
    effective = expr.op
    if negate and expr.op in ("and", "or"):
        effective = "or" if expr.op == "and" else "and"
    if effective == op and expr.op in ("and", "or"):
        for a in expr.args:
            _gather(a, negate, op, out)
    else:
        out.append((expr, negate))


def decompose_expr(expr: BoolExpr, builder: GateBuilder, negate: bool = False) -> str:
    """Lower a Boolean expression to gates; returns the result net.

    Variable names in the expression are interpreted as existing net names.
    """
    if expr.op == "var":
        return builder.literal(expr.name, not negate)
    if expr.op == "const":
        return builder.constant(expr.value ^ negate)
    if expr.op == "not":
        return decompose_expr(expr.args[0], builder, not negate)
    if expr.op == "xor":
        nets = [decompose_expr(a, builder) for a in expr.args]
        acc = nets[0]
        for net in nets[1:]:
            acc = builder.emit("XOR2", (acc, net), "xor") if "XOR2" in builder.library \
                else _xor_fallback(builder, acc, net)
        return builder.inverter(acc) if negate else acc
    # and / or with flattening and De Morgan applied.
    target = expr.op
    if negate:
        target = "or" if target == "and" else "and"
    leaves: list[tuple[BoolExpr, bool]] = []
    _gather(expr, negate, target, leaves)
    nets = [decompose_expr(e, builder, n) for e, n in leaves]
    return builder.and_tree(nets) if target == "and" else builder.or_tree(nets)


def _xor_fallback(builder: GateBuilder, a: str, b: str) -> str:
    na, nb = builder.inverter(a), builder.inverter(b)
    return builder.or_tree(
        [builder.and_tree([a, nb]), builder.and_tree([na, b])]
    )


def decompose_cover(
    cover: Cover,
    builder: GateBuilder,
    invert_output: bool = False,
) -> str:
    """Factor and lower an SOP cover; returns the net of the result.

    ``invert_output`` implements the complement of the cover, with the
    inversion pushed to the leaves (used for ``n~ = NOT n^0``).
    """
    if cover.num_cubes == 0:
        return builder.constant(invert_output)
    expr = factor(cover)
    return decompose_expr(expr, builder, negate=invert_output)

"""Technology-independent networks, collapse, decomposition, mapping, power."""

from repro.synth.collapse import circuit_to_technet, collapse
from repro.synth.decompose import GateBuilder, decompose_cover
from repro.synth.mapping import map_technet, mapped_stats, remove_buffers
from repro.synth.power import (
    signal_probabilities_bdd,
    signal_probabilities_sim,
    switching_power,
)
from repro.synth.technet import TechNetwork, TechNode, node_from_function

__all__ = [
    "TechNetwork",
    "TechNode",
    "node_from_function",
    "circuit_to_technet",
    "collapse",
    "GateBuilder",
    "decompose_cover",
    "map_technet",
    "remove_buffers",
    "mapped_stats",
    "signal_probabilities_bdd",
    "signal_probabilities_sim",
    "switching_power",
]

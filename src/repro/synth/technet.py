"""Technology-independent networks.

The paper's synthesis algorithm (Sec. 4.1) operates on *technology-independent
representations*: DAGs whose internal nodes carry complex Boolean functions of
10–15 inputs, kept as explicit sum-of-products covers of both the on-set and
the off-set (the masking synthesis selects cubes from both).

:class:`TechNode` stores the two covers over the node's fanin names;
:class:`TechNetwork` is the DAG with the usual structural services
(validation, topological order, cones, global BDD functions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.bdd.manager import BddManager, Function
from repro.bdd.isop import isop_function
from repro.errors import SynthesisError
from repro.logic.cover import Cover


@dataclass(frozen=True)
class TechNode:
    """One complex node: covers of the on-set and off-set over the fanins."""

    name: str
    fanins: tuple[str, ...]
    on_cover: Cover
    off_cover: Cover

    def __post_init__(self) -> None:
        if len(set(self.fanins)) != len(self.fanins):
            raise SynthesisError(f"node {self.name!r}: duplicate fanins")
        for cover in (self.on_cover, self.off_cover):
            if cover.names != self.fanins:
                raise SynthesisError(
                    f"node {self.name!r}: cover names {cover.names} do not "
                    f"match fanins {self.fanins}"
                )

    @property
    def num_fanins(self) -> int:
        return len(self.fanins)

    def local_function(self, mgr: BddManager) -> Function:
        """On-set function over manager variables named like the fanins."""
        for net in self.fanins:
            mgr.ensure_var(net)
        return self.on_cover.to_function(mgr)

    def check_consistent(self) -> None:
        """Verify the on/off covers partition the local input space."""
        mgr = BddManager(self.fanins)
        on = self.on_cover.to_function(mgr)
        off = self.off_cover.to_function(mgr)
        if not (on & off).is_false or not (on | off).is_true:
            raise SynthesisError(
                f"node {self.name!r}: on/off covers are not complementary"
            )


def node_from_function(
    name: str, fanins: Iterable[str], fn: Function
) -> TechNode:
    """Build a node from a BDD over variables named like the fanins.

    Fanins not in the function's support are dropped, so collapsed nodes
    keep a minimal support set.
    """
    support = fn.support()
    kept = tuple(f for f in fanins if f in support)
    on = Cover.from_cube_dicts(kept, isop_function(fn))
    off = Cover.from_cube_dicts(kept, isop_function(~fn))
    return TechNode(name, kept, on, off)


class TechNetwork:
    """A technology-independent logic network."""

    def __init__(
        self,
        name: str,
        inputs: Iterable[str],
        outputs: Iterable[str],
    ) -> None:
        self.name = name
        self.inputs: tuple[str, ...] = tuple(inputs)
        self.outputs: tuple[str, ...] = tuple(outputs)
        self._nodes: dict[str, TechNode] = {}
        self._topo: list[str] | None = None

    @property
    def nodes(self) -> Mapping[str, TechNode]:
        return dict(self._nodes)

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    def add_node(self, node: TechNode) -> TechNode:
        if node.name in self._nodes or node.name in self.inputs:
            raise SynthesisError(f"duplicate node {node.name!r}")
        self._nodes[node.name] = node
        self._topo = None
        return node

    def replace_node(self, node: TechNode) -> None:
        if node.name not in self._nodes:
            raise SynthesisError(f"no node {node.name!r} to replace")
        self._nodes[node.name] = node
        self._topo = None

    def remove_node(self, name: str) -> None:
        if name not in self._nodes:
            raise SynthesisError(f"no node {name!r} to remove")
        del self._nodes[name]
        self._topo = None

    def node(self, name: str) -> TechNode:
        try:
            return self._nodes[name]
        except KeyError:
            raise SynthesisError(f"unknown node {name!r}") from None

    def has_net(self, net: str) -> bool:
        return net in self._nodes or net in self.inputs

    def is_input(self, net: str) -> bool:
        return net in self.inputs

    def validate(self) -> None:
        """Structural validation: driven fanins/outputs, acyclicity."""
        for node in self._nodes.values():
            for f in node.fanins:
                if not self.has_net(f):
                    raise SynthesisError(
                        f"node {node.name!r} reads undefined net {f!r}"
                    )
        for out in self.outputs:
            if not self.has_net(out):
                raise SynthesisError(f"output {out!r} is not driven")
        self.topo_order()

    def topo_order(self) -> list[str]:
        """Node names in fanin-before-fanout order (raises on cycles)."""
        if self._topo is not None:
            return self._topo
        indeg: dict[str, int] = {}
        deps: dict[str, list[str]] = {}
        for node in self._nodes.values():
            count = 0
            for f in node.fanins:
                if f in self._nodes:
                    count += 1
                    deps.setdefault(f, []).append(node.name)
            indeg[node.name] = count
        ready = [n for n, d in indeg.items() if d == 0]
        order: list[str] = []
        while ready:
            n = ready.pop()
            order.append(n)
            for d in deps.get(n, ()):
                indeg[d] -= 1
                if indeg[d] == 0:
                    ready.append(d)
        if len(order) != len(self._nodes):
            raise SynthesisError(f"technetwork {self.name!r} has a cycle")
        self._topo = order
        return order

    def fanout_counts(self) -> dict[str, int]:
        """How many nodes read each net (outputs add one reader)."""
        counts = {net: 0 for net in self.inputs}
        counts.update({n: 0 for n in self._nodes})
        for node in self._nodes.values():
            for f in node.fanins:
                counts[f] += 1
        for out in self.outputs:
            counts[out] += 1
        return counts

    def fanin_cone(self, net: str) -> set[str]:
        """Node names in the transitive fanin of ``net`` (including it)."""
        cone: set[str] = set()
        stack = [net]
        while stack:
            n = stack.pop()
            if n in self.inputs or n in cone:
                continue
            cone.add(n)
            stack.extend(self._nodes[n].fanins)
        return cone

    def global_functions(self, mgr: BddManager) -> dict[str, Function]:
        """BDD of every net over the primary inputs."""
        for net in self.inputs:
            mgr.ensure_var(net)
        fns: dict[str, Function] = {net: mgr.var(net) for net in self.inputs}
        for name in self.topo_order():
            node = self._nodes[name]
            local = node.on_cover
            acc = mgr.false
            for cube in local.cubes:
                term = mgr.true
                for net, pol in cube.to_dict(local.names).items():
                    term = term & (fns[net] if pol else ~fns[net])
                acc = acc | term
            fns[name] = acc
        return fns

    def copy(self, name: str | None = None) -> "TechNetwork":
        out = TechNetwork(name or self.name, self.inputs, self.outputs)
        out._nodes = dict(self._nodes)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TechNetwork({self.name!r}, {len(self.inputs)} in, "
            f"{len(self.outputs)} out, {len(self._nodes)} nodes)"
        )

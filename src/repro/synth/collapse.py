"""Extraction of a technology-independent network from a mapped circuit.

``circuit_to_technet`` lifts every gate to a :class:`TechNode` (one node per
gate, covers via ISOP of the cell function).  ``collapse`` then eliminates
nodes into their fanouts — the reverse of technology decomposition — until
every surviving node has up to ``max_support`` fanins (the paper works with
complex nodes of 10–15 inputs).  Elimination is the classic SIS-style pass:
a node is absorbed when the merged support and the re-extracted SOPs stay
within bounds, preferring low-fanout nodes (absorbing a single-fanout node
never duplicates logic).
"""

from __future__ import annotations

from collections import deque

from repro.bdd.manager import BddManager
from repro.errors import SynthesisError
from repro.netlist.circuit import Circuit
from repro.spcf.timedfunc import expr_to_function
from repro.synth.technet import TechNetwork, TechNode, node_from_function


def circuit_to_technet(circuit: Circuit) -> TechNetwork:
    """One-to-one lift of a mapped circuit into a technology-independent net."""
    circuit.validate()
    net = TechNetwork(circuit.name, circuit.inputs, circuit.outputs)
    for name in circuit.topo_order():
        gate = circuit.gates[name]
        cell = gate.cell
        distinct = tuple(dict.fromkeys(gate.fanins))
        mgr = BddManager(distinct)
        env = {
            pin: mgr.var(fanin)
            for pin, fanin in zip(cell.inputs, gate.fanins)
        }
        fn = expr_to_function(cell.expr, env, mgr)
        net.add_node(node_from_function(name, distinct, fn))
    net.validate()
    return net


def collapse(
    network: TechNetwork,
    max_support: int = 12,
    max_cubes: int = 20,
    max_fanout: int = 2,
    library=None,
) -> TechNetwork:
    """Eliminate nodes into their fanouts to form complex nodes.

    Parameters
    ----------
    max_support:
        Upper bound on the fanin count of any merged node (paper: 10–15).
    max_cubes:
        Upper bound on the cube count of either re-extracted cover; keeps
        the ISOPs (and later the cube-selection pass) tractable.
    max_fanout:
        A node is only eliminated when at most this many nodes read it,
        bounding logic duplication.
    library:
        When given, a merge is additionally rejected if its best mapped
        implementation is slower or substantially larger than mapping the
        two nodes separately — this keeps XOR-rich structures (whose SOPs
        flatten badly) intact.
    """
    if max_support < 2:
        raise SynthesisError(f"max_support {max_support} too small")

    def best_cost(tech_node: TechNode) -> tuple[int, float]:
        from repro.synth.mapping import trial_cost

        return min(
            trial_cost(tech_node.on_cover, library, inverted=False),
            trial_cost(tech_node.off_cover, library, inverted=True),
        )
    net = network.copy()
    readers: dict[str, set[str]] = {}
    for node in net.nodes.values():
        for f in node.fanins:
            readers.setdefault(f, set()).add(node.name)

    worklist = deque(net.topo_order())
    queued = set(worklist)
    while worklist:
        name = worklist.popleft()
        queued.discard(name)
        if name not in net.nodes or name in net.outputs:
            continue
        node = net.node(name)
        reading = sorted(readers.get(name, ()))
        if not reading or len(reading) > max_fanout:
            continue
        merged: list[tuple[TechNode, TechNode]] = []
        ok = True
        for reader_name in reading:
            reader = net.node(reader_name)
            support = tuple(
                dict.fromkeys(
                    [f for f in reader.fanins if f != name] + list(node.fanins)
                )
            )
            if len(support) > max_support:
                ok = False
                break
            mgr = BddManager(dict.fromkeys((*support, name)))
            node_fn = node.on_cover.to_function(mgr)
            reader_fn = reader.on_cover.to_function(mgr)
            combined = reader_fn.compose({name: node_fn})
            candidate = node_from_function(reader_name, support, combined)
            # XOR-rich functions have no compact SOP (a k-input parity has
            # 2^(k-1) cubes); refusing candidates whose cover exceeds its
            # support size keeps such structures as separate nodes.
            cube_cap = min(max_cubes, max(4, len(support)))
            if (
                candidate.on_cover.num_cubes > cube_cap
                or candidate.off_cover.num_cubes > cube_cap
            ):
                ok = False
                break
            if library is not None:
                cand_delay, cand_area = best_cost(candidate)
                node_delay, node_area = best_cost(node)
                reader_delay, reader_area = best_cost(reader)
                if cand_delay > node_delay + reader_delay or (
                    cand_area > 1.25 * (node_area + reader_area) + 4.0
                ):
                    ok = False
                    break
            merged.append((reader, candidate))
        if not ok:
            continue
        # Commit: rewrite every reader, then drop the eliminated node.
        for reader, candidate in merged:
            for f in reader.fanins:
                readers.get(f, set()).discard(reader.name)
            net.replace_node(candidate)
            for f in candidate.fanins:
                readers.setdefault(f, set()).add(candidate.name)
        for f in node.fanins:
            readers.get(f, set()).discard(name)
        net.remove_node(name)
        # Fanins may have become low-fanout; readers got new shapes.
        for follow_up in (*node.fanins, *(c.name for _, c in merged)):
            if follow_up not in queued and follow_up in net.nodes:
                worklist.append(follow_up)
                queued.add(follow_up)
    net.validate()
    return net

"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see the
experiment index in DESIGN.md) and prints the corresponding rows; timings
come from pytest-benchmark.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import pytest

from repro.netlist import lsi10k_like_library


@pytest.fixture(scope="session")
def lsi_lib():
    return lsi10k_like_library()


def fmt_count(n: int) -> str:
    """Scientific-notation formatting like the paper's tables."""
    if n == 0:
        return "0"
    exponent = len(str(n)) - 1
    mantissa = n / (10**exponent)
    return f"{mantissa:.2f}e{exponent}"

"""Sec. 2.1 — wearout prediction from the masked-error rate.

Ages a masked design epoch by epoch; the masked-error event rate
``e AND (y XOR y~)`` rises as the speed-paths slow down, and the
:class:`WearoutMonitor` flags onset *before* any error escapes (residual
error rate stays 0 while the masking circuit retains slack).
"""

from repro.apps import WearoutMonitor, predict_onset, wearout_experiment
from repro.benchcircuits import make_benchmark
from repro.core import mask_circuit
from repro.sim import LinearAging


def test_wearout_onset_predicted(benchmark, lsi_lib):
    circuit = make_benchmark("cmb", lsi_lib)
    res = mask_circuit(circuit, lsi_lib)

    def run():
        return wearout_experiment(
            res.masking,
            res.design,
            aging=LinearAging(rate=0.08),
            epochs=8,
            cycles_per_epoch=150,
            seed=5,
        )

    epochs = benchmark.pedantic(run, rounds=1, iterations=1)
    onset = predict_onset(epochs, WearoutMonitor(rate_threshold=0.01))
    print("\nWearout sweep (masked design, aging speed-path gates):")
    print(f"{'epoch':>5s} {'scale':>6s} {'masked-rate':>12s} "
          f"{'raw-rate':>9s} {'residual':>9s}")
    for i, e in enumerate(epochs):
        flag = "  <-- onset flagged" if onset == i else ""
        print(
            f"{i:5d} {e.delay_scale:6.2f} {e.masked_error_rate:12.3f} "
            f"{e.unmasked_error_rate:9.3f} {e.residual_error_rate:9.3f}{flag}"
        )
    assert all(e.residual_error_rate == 0.0 for e in epochs)
    late = [e for e in epochs if e.unmasked_error_rate > 0]
    if late:
        assert onset is not None, "errors occurred but onset never flagged"

"""Table 2 — area and power overhead for 100% masking on all 20 circuits.

Paper columns: circuit, I/O, gates, critical POs, critical minterms, slack %,
area overhead %, power overhead %.  The paper reports averages of 57% slack,
18% area, and 16% power; our measured averages are printed at the end of the
run (see EXPERIMENTS.md for the recorded comparison).
"""

import pytest

from benchmarks.conftest import fmt_count
from repro.benchcircuits import PAPER_SPECS, make_benchmark
from repro.core import mask_circuit

_ROWS: list[tuple] = []

#: The largest circuits dominate wall-clock; keep them in the sweep but
#: benchmark them with a single round.
_NAMES = tuple(PAPER_SPECS)


def _print_table():
    print(
        "\nTable 2: overhead for 100% masking of speed-path timing errors\n"
        f"{'circuit':18s} {'I/O':>9s} {'gates':>6s} {'critPO':>7s} "
        f"{'crit minterms':>14s} {'slack%':>7s} {'area%':>7s} {'power%':>7s} "
        f"{'cov%':>5s}"
    )
    slacks, areas, powers = [], [], []
    for row in _ROWS:
        name, io, gates, crit, minterms, slack, area, power, cov = row
        print(
            f"{name:18s} {io:>9s} {gates:6d} {crit:7d} {minterms:>14s} "
            f"{slack:7.1f} {area:7.1f} {power:7.1f} {cov:5.0f}"
        )
        slacks.append(slack)
        areas.append(area)
        powers.append(power)
    n = len(_ROWS)
    print(
        f"{'Average':18s} {'':>9s} {'':>6s} {'':>7s} {'':>14s} "
        f"{sum(slacks) / n:7.1f} {sum(areas) / n:7.1f} {sum(powers) / n:7.1f}"
        f"\n(paper averages: slack 57, area 18, power 16)"
    )


@pytest.mark.parametrize("name", _NAMES)
def test_table2_row(benchmark, name, lsi_lib):
    circuit = make_benchmark(name, lsi_lib)

    result = benchmark.pedantic(
        lambda: mask_circuit(circuit, lsi_lib), rounds=1, iterations=1
    )
    r = result.report
    assert r.sound, name
    assert r.coverage_percent == 100.0, name
    assert r.critical_outputs == PAPER_SPECS[name].deep_outputs
    _ROWS.append(
        (
            name,
            f"{len(circuit.inputs)}/{len(circuit.outputs)}",
            circuit.num_gates,
            r.critical_outputs,
            fmt_count(r.critical_minterms),
            r.slack_percent,
            r.area_overhead_percent,
            r.power_overhead_percent,
            r.coverage_percent,
        )
    )
    if len(_ROWS) == len(_NAMES):
        _print_table()

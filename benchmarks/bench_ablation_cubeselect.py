"""Ablation A2 — what the don't-care exploitation buys.

Three synthesis configurations on the same circuits:

* ``full``      — the default flow: essential-weight cube selection plus
                  don't-care ISOP candidates for prediction and indicator,
* ``paper``     — cube selection only (``dontcare_isop=False``), the
                  literal reading of the paper's Sec. 4.1 steps (i)-(iii),
* ``primes``    — selection drawing from the complete prime-implicant pool
                  instead of an irredundant ISOP cover.

All three are sound with 100% coverage; the comparison shows how much of
the overhead reduction comes from each ingredient.
"""

import pytest

from repro.benchcircuits import make_benchmark
from repro.core import mask_circuit

_CONFIGS = {
    "full": dict(),
    "paper": dict(dontcare_isop=False),
    "primes": dict(cube_pool="primes"),
}
_NAMES = ("cmb", "cu", "C432")
_ROWS = []


@pytest.mark.parametrize("config", sorted(_CONFIGS))
@pytest.mark.parametrize("name", _NAMES)
def test_cubeselect_ablation(benchmark, name, config, lsi_lib):
    circuit = make_benchmark(name, lsi_lib)
    res = benchmark.pedantic(
        lambda: mask_circuit(circuit, lsi_lib, **_CONFIGS[config]),
        rounds=1,
        iterations=1,
    )
    r = res.report
    assert r.sound and r.coverage_percent == 100.0
    _ROWS.append((name, config, r))
    if len(_ROWS) == len(_NAMES) * len(_CONFIGS):
        print(
            "\nAblation A2: cube-selection configuration\n"
            f"{'circuit':>8s} {'config':>7s} {'slack%':>7s} "
            f"{'area%':>7s} {'power%':>7s} {'gates':>6s}"
        )
        for nm, cfg, rr in sorted(_ROWS):
            print(
                f"{nm:>8s} {cfg:>7s} {rr.slack_percent:7.1f} "
                f"{rr.area_overhead_percent:7.1f} "
                f"{rr.power_overhead_percent:7.1f} "
                f"{rr.masking_area:6.0f}"
            )

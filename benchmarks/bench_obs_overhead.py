"""Observability overhead — proves the disabled layer is (nearly) free.

The obs acceptance gate: with ``REPRO_OBS`` unset, the instrumented hot
paths must run within **2%** of a pristine build that never heard of
:mod:`repro.obs`.  The instrumentation discipline under test is "one
attribute load and one branch per *call*" (never per gate), so the
stress configuration uses the smallest batches the backends are actually
used with — that is where per-call overhead is proportionally largest.

Three variants are timed per backend:

* ``pristine``  — local verbatim copies of the eval loops with the
  ``if _METER.enabled`` guard deleted (the honest "never instrumented"
  baseline; kept in sync with ``repro.engine.backends`` by the
  bit-exactness assertion below),
* ``disabled``  — the shipped code with observability off (the default),
* ``enabled``   — the shipped code recording counters and histograms.

A 2% gate needs an estimator that survives shared-runner noise, where
block timing — and even min-filtering — is biased by load drift (under
sustained steal there may be *no* clean windows).  So the variants are
sampled in tight round-robin rounds and the gated quantity is the
**median of per-round ratios** (each round's variants see near-identical
machine conditions, so the slowdown divides out), re-estimated over
several independent trials and medianed again.

Gates (``check_targets``): disabled/pristine ≤ 1.02 for both the python
``eval_words`` path and the numpy ``eval_lanes`` path.  The enabled
ratio is reported but not gated — recording costs whatever it costs.

Results go to ``BENCH_obs.json`` next to the repo root.  Run standalone
(``python benchmarks/bench_obs_overhead.py``), in CI check mode
(``--check``, fewer repeats), or via ``pytest benchmarks/
--benchmark-only -s``.
"""

from __future__ import annotations

import argparse
import gc
import json
import statistics
import sys
import time
from pathlib import Path

from repro import obs
from repro.benchcircuits import circuit_by_name
from repro.engine import (
    compile_circuit,
    numpy_available,
    pack_input_words,
    select_backend,
)
from repro.engine.backends import _check_width
from repro.errors import EngineError
from repro.netlist import lsi10k_like_library
from repro.sim import pack_patterns, random_patterns

#: Small-batch stress shapes: per-call overhead is amortized over this few
#: patterns, the worst case for the "one branch per call" discipline.  Small
#: enough that a per-gate recording mistake would blow the 2% gate at once,
#: large enough that the measurement is not dominated by timer jitter.
WORD_WIDTH = 1024
NUMPY_LANES = 16  # 1024 patterns, grouped-gather regime

#: Eval calls per timing sample.  Samples are kept *short* (a few hundred
#: microseconds) so each round's pristine/disabled/enabled samples run
#: under near-identical machine conditions; per-call jitter is handled by
#: the median over rounds, not by sample length.
PYTHON_CALLS = 10
NUMPY_CALLS = 5

#: Paired rounds per trial; each round yields one disabled/pristine and
#: one enabled/pristine ratio, medianed per trial.
ROUNDS = 120

#: Independent trials; the reported ratio is the median of trial medians,
#: which decorrelates multi-second load drift.
REPEATS = 9
CHECK_REPEATS = 5

CIRCUIT = "cmb"

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"


def _pristine_eval_words(compiled, input_words, width):
    """``PythonWordBackend.eval_words`` minus only the obs guard.

    The validation lines predate obs and belong to the baseline — dropping
    them would charge their cost to the observability layer.
    """
    _check_width(width)
    if len(input_words) != compiled.n_inputs:
        raise EngineError(
            f"{len(input_words)} input words for {compiled.n_inputs} inputs"
        )
    mask = (1 << width) - 1
    values = [0] * compiled.n_nets
    for i, word in enumerate(input_words):
        values[i] = word & mask
    for func, out, fanins in compiled.plan:
        values[out] = func(mask, *[values[f] for f in fanins])
    return values


def _make_pristine_eval_lanes(np):
    """``NumpyWordBackend.eval_lanes`` minus only the obs guard."""

    from repro.engine.backends import _GROUPED_LANES_MAX, _LANE_MASK

    mask = np.uint64(_LANE_MASK)

    def pristine_eval_lanes(backend, compiled, input_lanes):
        lanes = np.asarray(input_lanes, dtype=np.uint64)
        if lanes.ndim != 2 or lanes.shape[0] != compiled.n_inputs:
            raise EngineError(
                f"input lane matrix {getattr(lanes, 'shape', None)} does not "
                f"match {compiled.n_inputs} inputs"
            )
        n_lanes = lanes.shape[1]
        values = np.empty((compiled.n_nets, n_lanes), dtype=np.uint64)
        values[: compiled.n_inputs] = lanes
        if n_lanes <= _GROUPED_LANES_MAX:
            for func, outs, fanin_matrix, n_pins in backend._group_plan(compiled):
                if n_pins == 0:
                    values[outs] = func(mask)
                else:
                    ins = values[fanin_matrix]
                    values[outs] = func(mask, *(ins[:, p] for p in range(n_pins)))
        else:
            for func, out, fanins in compiled.plan:
                values[out] = func(mask, *(values[f] for f in fanins))
        return values

    return pristine_eval_lanes


def _measure_paired(repeats, calls, variants):
    """Median-of-paired-ratios measurement over ``repeats`` trials.

    ``variants`` maps name -> (setup, fn) with ``"pristine"`` required;
    setup runs untimed before each sample.  Each of the ``ROUNDS`` rounds
    in a trial times every variant back to back (``calls`` eval calls per
    sample) and contributes one ``<variant>/pristine`` ratio; the trial's
    estimate is the median round ratio, and the reported ratio is the
    median over trials.  Returns per-call sample times plus the ratios.
    """
    names = list(variants)
    ratio_trials = {name: [] for name in names if name != "pristine"}
    all_samples = {name: [] for name in names}
    for _ in range(repeats):
        times = {name: [] for name in names}
        gc.collect()
        gc.disable()  # the enabled variant allocates; don't let its GC
        try:          # debt fire inside another variant's sample
            for r in range(ROUNDS):
                order = names[r % len(names):] + names[: r % len(names)]
                for name in order:  # rotate so no variant owns a slot
                    setup, fn = variants[name]
                    setup()
                    t0 = time.perf_counter()
                    for _ in range(calls):
                        fn()
                    times[name].append(time.perf_counter() - t0)
        finally:
            gc.enable()
        for name in names:
            all_samples[name].extend(times[name])
        pristine = times["pristine"]
        for name, trials in ratio_trials.items():
            trials.append(
                statistics.median(
                    t / p for p, t in zip(pristine, times[name])
                )
            )
    row = {
        f"{name}_s": statistics.median(all_samples[name]) / calls
        for name in names
    }
    for name, trials in ratio_trials.items():
        row[f"{name}_ratio"] = statistics.median(trials)
    row["calls_per_sample"] = calls
    return row


def measure(repeats: int = REPEATS, library=None) -> dict:
    """Time pristine/disabled/enabled for both backends on one circuit."""
    circuit = circuit_by_name(CIRCUIT, library)
    compiled = compile_circuit(circuit)
    was_enabled = obs.enabled()

    pats = list(random_patterns(circuit.inputs, WORD_WIDTH, seed=7))
    words, width = pack_patterns(circuit.inputs, pats)
    packed = pack_input_words(compiled, words, width)
    python = select_backend("python")

    # The pristine copy must still be *the same computation* or its timing
    # means nothing; obs must stay off here so the shipped path records
    # nothing either.
    obs.configure(enabled=False)
    assert _pristine_eval_words(compiled, packed, width) == python.eval_words(
        compiled, packed, width
    ), "pristine eval_words copy drifted from repro.engine.backends"

    def off():
        obs.configure(enabled=False)

    def on():
        obs.configure(enabled=True)

    rows = {}
    py = _measure_paired(
        repeats,
        PYTHON_CALLS,
        {
            "pristine": (
                off,
                lambda: _pristine_eval_words(compiled, packed, width),
            ),
            "disabled": (
                off,
                lambda: python.eval_words(compiled, packed, width),
            ),
            "enabled": (
                on,
                lambda: python.eval_words(compiled, packed, width),
            ),
        },
    )
    obs.configure(enabled=False)
    py["patterns_per_call"] = width
    rows["python_eval_words"] = py

    if numpy_available():
        import numpy as np

        numpy_backend = select_backend("numpy")
        pristine_eval_lanes = _make_pristine_eval_lanes(np)
        rng = np.random.default_rng(7)
        lanes = rng.integers(
            0, 2**64, size=(compiled.n_inputs, NUMPY_LANES), dtype=np.uint64
        )
        assert np.array_equal(
            pristine_eval_lanes(numpy_backend, compiled, lanes),
            numpy_backend.eval_lanes(compiled, lanes),
        ), "pristine eval_lanes copy drifted from repro.engine.backends"

        npy = _measure_paired(
            repeats,
            NUMPY_CALLS,
            {
                "pristine": (
                    off,
                    lambda: pristine_eval_lanes(numpy_backend, compiled, lanes),
                ),
                "disabled": (
                    off,
                    lambda: numpy_backend.eval_lanes(compiled, lanes),
                ),
                "enabled": (
                    on,
                    lambda: numpy_backend.eval_lanes(compiled, lanes),
                ),
            },
        )
        obs.configure(enabled=False)
        npy["patterns_per_call"] = NUMPY_LANES * 64
        rows["numpy_eval_lanes"] = npy

    obs.configure(enabled=was_enabled)
    obs.reset()
    return {
        "benchmark": "obs_overhead",
        "circuit": CIRCUIT,
        "rounds": ROUNDS,
        "repeats": repeats,
        "numpy_available": numpy_available(),
        "rows": rows,
    }


def print_table(payload: dict) -> None:
    print(
        f"\n{'path':22s} {'patterns':>9s} {'pristine':>10s} {'disabled':>10s} "
        f"{'enabled':>10s} {'dis/pri':>8s} {'en/pri':>8s}"
    )
    for name, row in payload["rows"].items():
        print(
            f"{name:22s} {row['patterns_per_call']:9d} "
            f"{row['pristine_s'] * 1e6:8.1f}us {row['disabled_s'] * 1e6:8.1f}us "
            f"{row['enabled_s'] * 1e6:8.1f}us "
            f"{row['disabled_ratio']:8.4f} {row['enabled_ratio']:8.4f}"
        )
    print(f"(per-call medians; ratios are medians of paired round ratios, "
          f"{payload['repeats']} trials x {payload['rounds']} rounds; "
          f"JSON written to {RESULT_PATH})")


def check_targets(payload: dict) -> None:
    """The obs PR's acceptance gate: disabled instrumentation is free."""
    for name, row in payload["rows"].items():
        assert row["disabled_ratio"] <= 1.02, (
            f"{name}: disabled observability costs "
            f"{(row['disabled_ratio'] - 1) * 100:.2f}% (> 2% budget)"
        )


def run_suite(repeats: int = REPEATS, library=None) -> dict:
    payload = measure(repeats, library)
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_obs_overhead(benchmark, lsi_lib):
    payload = benchmark.pedantic(
        lambda: run_suite(REPEATS, lsi_lib), rounds=1, iterations=1
    )
    print_table(payload)
    check_targets(payload)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="CI mode: fewer repeats, nonzero exit when the 2%% gate fails",
    )
    args = parser.parse_args()
    payload = run_suite(CHECK_REPEATS if args.check else REPEATS,
                        lsi10k_like_library())
    print_table(payload)
    check_targets(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Observability overhead — proves the disabled layer is (nearly) free.

The obs acceptance gate: with ``REPRO_OBS`` unset, the instrumented hot
paths must run within **2%** of a pristine build that never heard of
:mod:`repro.obs`.  The instrumentation discipline under test is "one
attribute load and one branch per *call*" (never per gate), so the
stress configuration uses the smallest batches the backends are actually
used with — that is where per-call overhead is proportionally largest.

Three variants are timed per backend:

* ``pristine``  — local verbatim copies of the eval loops with the
  ``if _METER.enabled`` guard deleted (the honest "never instrumented"
  baseline; kept in sync with ``repro.engine.backends`` by the
  bit-exactness assertion below),
* ``disabled``  — the shipped code with observability off (the default),
* ``enabled``   — the shipped code recording counters and histograms.

A 2% gate needs an estimator that survives shared-runner noise, where
block timing — and even min-filtering — is biased by load drift (under
sustained steal there may be *no* clean windows).  So the variants are
sampled in tight round-robin rounds and the gated quantity is the
**median of per-round ratios** (each round's variants see near-identical
machine conditions, so the slowdown divides out), re-estimated over
several independent trials and medianed again.

Gates (``check_targets``): disabled/pristine ≤ 1.02 for both the python
``eval_words`` path and the numpy ``eval_lanes`` path.  The enabled
ratio is reported but not gated — recording costs whatever it costs.

A fourth lane times the **live-telemetry flush** a queue worker performs
on its heartbeat cadence (delta snapshot + JSONL append + flight-ring
dump, the full :meth:`QueueWorker._flush_telemetry` path) against a
worst-case registry that produces a non-empty delta every flush.  The
flush is time-driven, not per-task, so its gate is the implied slowdown
of a shard path heartbeating at the distributed-smoke cadence
(``lease_ttl 1.5`` → one flush per 0.5 s): ≤ 1.05.

Results go to ``BENCH_obs.json`` next to the repo root.  Run standalone
(``python benchmarks/bench_obs_overhead.py``), in CI check mode
(``--check``, fewer repeats), or via ``pytest benchmarks/
--benchmark-only -s``.
"""

from __future__ import annotations

import argparse
import gc
import json
import statistics
import sys
import time
from pathlib import Path

from repro import obs
from repro.benchcircuits import circuit_by_name
from repro.engine import (
    compile_circuit,
    numpy_available,
    pack_input_words,
    select_backend,
)
from repro.engine.backends import _check_width
from repro.errors import EngineError
from repro.netlist import lsi10k_like_library
from repro.sim import pack_patterns, random_patterns

#: Small-batch stress shapes: per-call overhead is amortized over this few
#: patterns, the worst case for the "one branch per call" discipline.  Small
#: enough that a per-gate recording mistake would blow the 2% gate at once,
#: large enough that the measurement is not dominated by timer jitter.
WORD_WIDTH = 1024
NUMPY_LANES = 16  # 1024 patterns, grouped-gather regime

#: Eval calls per timing sample.  Samples are kept *short* (a few hundred
#: microseconds) so each round's pristine/disabled/enabled samples run
#: under near-identical machine conditions; per-call jitter is handled by
#: the median over rounds, not by sample length.
PYTHON_CALLS = 10
NUMPY_CALLS = 5

#: Paired rounds per trial; each round yields one disabled/pristine and
#: one enabled/pristine ratio, medianed per trial.
ROUNDS = 120

#: Independent trials; the reported ratio is the median of trial medians,
#: which decorrelates multi-second load drift.
REPEATS = 9
CHECK_REPEATS = 5

CIRCUIT = "cmb"

#: Telemetry-flush lane: the fastest heartbeat cadence the repo actually
#: runs (distributed smoke: lease_ttl 1.5 s → heartbeat every 0.5 s) and
#: a flight ring at full capacity, the worst case for the dump rewrite.
HEARTBEAT_INTERVAL_S = 0.5
FLUSHES_PER_TRIAL = 60

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"


def _pristine_eval_words(compiled, input_words, width):
    """``PythonWordBackend.eval_words`` minus only the obs guard.

    The validation lines predate obs and belong to the baseline — dropping
    them would charge their cost to the observability layer.
    """
    _check_width(width)
    if len(input_words) != compiled.n_inputs:
        raise EngineError(
            f"{len(input_words)} input words for {compiled.n_inputs} inputs"
        )
    mask = (1 << width) - 1
    values = [0] * compiled.n_nets
    for i, word in enumerate(input_words):
        values[i] = word & mask
    for func, out, fanins in compiled.plan:
        values[out] = func(mask, *[values[f] for f in fanins])
    return values


def _make_pristine_eval_lanes(np):
    """``NumpyWordBackend.eval_lanes`` minus only the obs guard."""

    from repro.engine.backends import _GROUPED_LANES_MAX, _LANE_MASK

    mask = np.uint64(_LANE_MASK)

    def pristine_eval_lanes(backend, compiled, input_lanes):
        lanes = np.asarray(input_lanes, dtype=np.uint64)
        if lanes.ndim != 2 or lanes.shape[0] != compiled.n_inputs:
            raise EngineError(
                f"input lane matrix {getattr(lanes, 'shape', None)} does not "
                f"match {compiled.n_inputs} inputs"
            )
        n_lanes = lanes.shape[1]
        values = np.empty((compiled.n_nets, n_lanes), dtype=np.uint64)
        values[: compiled.n_inputs] = lanes
        if n_lanes <= _GROUPED_LANES_MAX:
            for func, outs, fanin_matrix, n_pins in backend._group_plan(compiled):
                if n_pins == 0:
                    values[outs] = func(mask)
                else:
                    ins = values[fanin_matrix]
                    values[outs] = func(mask, *(ins[:, p] for p in range(n_pins)))
        else:
            for func, out, fanins in compiled.plan:
                values[out] = func(mask, *(values[f] for f in fanins))
        return values

    return pristine_eval_lanes


def _measure_paired(repeats, calls, variants):
    """Median-of-paired-ratios measurement over ``repeats`` trials.

    ``variants`` maps name -> (setup, fn) with ``"pristine"`` required;
    setup runs untimed before each sample.  Each of the ``ROUNDS`` rounds
    in a trial times every variant back to back (``calls`` eval calls per
    sample) and contributes one ``<variant>/pristine`` ratio; the trial's
    estimate is the median round ratio, and the reported ratio is the
    median over trials.  Returns per-call sample times plus the ratios.
    """
    names = list(variants)
    ratio_trials = {name: [] for name in names if name != "pristine"}
    all_samples = {name: [] for name in names}
    for _ in range(repeats):
        times = {name: [] for name in names}
        gc.collect()
        gc.disable()  # the enabled variant allocates; don't let its GC
        try:          # debt fire inside another variant's sample
            for r in range(ROUNDS):
                order = names[r % len(names):] + names[: r % len(names)]
                for name in order:  # rotate so no variant owns a slot
                    setup, fn = variants[name]
                    setup()
                    t0 = time.perf_counter()
                    for _ in range(calls):
                        fn()
                    times[name].append(time.perf_counter() - t0)
        finally:
            gc.enable()
        for name in names:
            all_samples[name].extend(times[name])
        pristine = times["pristine"]
        for name, trials in ratio_trials.items():
            trials.append(
                statistics.median(
                    t / p for p, t in zip(pristine, times[name])
                )
            )
    row = {
        f"{name}_s": statistics.median(all_samples[name]) / calls
        for name in names
    }
    for name, trials in ratio_trials.items():
        row[f"{name}_ratio"] = statistics.median(trials)
    row["calls_per_sample"] = calls
    return row


def _measure_timeseries_flush(repeats: int, workdir: Path) -> dict:
    """Seconds per heartbeat-cadence telemetry flush, worst case.

    Reproduces what :meth:`QueueWorker._flush_telemetry` does on every
    heartbeat — snapshot the registry, delta-encode, append one JSONL
    record, rewrite the flight dump — against a registry whose series
    change every flush (so the delta is never empty) and a flight ring
    filled to capacity (so the dump rewrite is maximal).  The gated
    quantity is the implied shard-path ratio at the smoke cadence:
    ``1 + flush_s / HEARTBEAT_INTERVAL_S``.
    """
    from repro.obs.flight import FLIGHT_LIMIT, FlightRecorder
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.timeseries import TelemetryWriter

    registry = MetricsRegistry(enabled=True)
    vectors = registry.counter(
        "repro_campaign_vectors_total", "vectors simulated"
    )
    shard_wall = registry.histogram(
        "repro_campaign_shard_seconds", "wall seconds per completed shard"
    )
    recorder = FlightRecorder(worker="bench", limit=FLIGHT_LIMIT)
    for i in range(FLIGHT_LIMIT):  # ring at capacity: maximal dump
        recorder.record_log({"event": "bench.fill", "i": i, "corr": "fp"})
    writer = TelemetryWriter(workdir, "bench", registry=registry)
    writer.flight = recorder
    writer.set_current("fp")
    dump_path = workdir / "bench.flight.json"

    trials = []
    samples = []
    for _ in range(repeats):
        gc.collect()
        times = []
        for i in range(FLUSHES_PER_TRIAL):
            vectors.add(64, circuit=CIRCUIT, mode="delay")
            shard_wall.observe(0.25 + (i % 7) * 0.1)
            writer.note_task(0.25)
            t0 = time.perf_counter()
            writer.flush()
            recorder.dump_to(dump_path, trigger="heartbeat")
            times.append(time.perf_counter() - t0)
        samples.extend(times)
        trials.append(statistics.median(times))
    flush_s = statistics.median(trials)
    return {
        "flush_s": flush_s,
        "flushes_per_trial": FLUSHES_PER_TRIAL,
        "flight_ring_entries": FLIGHT_LIMIT,
        "heartbeat_interval_s": HEARTBEAT_INTERVAL_S,
        "timeseries_ratio": 1.0 + flush_s / HEARTBEAT_INTERVAL_S,
    }


def measure(repeats: int = REPEATS, library=None) -> dict:
    """Time pristine/disabled/enabled for both backends on one circuit."""
    circuit = circuit_by_name(CIRCUIT, library)
    compiled = compile_circuit(circuit)
    was_enabled = obs.enabled()

    pats = list(random_patterns(circuit.inputs, WORD_WIDTH, seed=7))
    words, width = pack_patterns(circuit.inputs, pats)
    packed = pack_input_words(compiled, words, width)
    python = select_backend("python")

    # The pristine copy must still be *the same computation* or its timing
    # means nothing; obs must stay off here so the shipped path records
    # nothing either.
    obs.configure(enabled=False)
    assert _pristine_eval_words(compiled, packed, width) == python.eval_words(
        compiled, packed, width
    ), "pristine eval_words copy drifted from repro.engine.backends"

    def off():
        obs.configure(enabled=False)

    def on():
        obs.configure(enabled=True)

    rows = {}
    py = _measure_paired(
        repeats,
        PYTHON_CALLS,
        {
            "pristine": (
                off,
                lambda: _pristine_eval_words(compiled, packed, width),
            ),
            "disabled": (
                off,
                lambda: python.eval_words(compiled, packed, width),
            ),
            "enabled": (
                on,
                lambda: python.eval_words(compiled, packed, width),
            ),
        },
    )
    obs.configure(enabled=False)
    py["patterns_per_call"] = width
    rows["python_eval_words"] = py

    if numpy_available():
        import numpy as np

        numpy_backend = select_backend("numpy")
        pristine_eval_lanes = _make_pristine_eval_lanes(np)
        rng = np.random.default_rng(7)
        lanes = rng.integers(
            0, 2**64, size=(compiled.n_inputs, NUMPY_LANES), dtype=np.uint64
        )
        assert np.array_equal(
            pristine_eval_lanes(numpy_backend, compiled, lanes),
            numpy_backend.eval_lanes(compiled, lanes),
        ), "pristine eval_lanes copy drifted from repro.engine.backends"

        npy = _measure_paired(
            repeats,
            NUMPY_CALLS,
            {
                "pristine": (
                    off,
                    lambda: pristine_eval_lanes(numpy_backend, compiled, lanes),
                ),
                "disabled": (
                    off,
                    lambda: numpy_backend.eval_lanes(compiled, lanes),
                ),
                "enabled": (
                    on,
                    lambda: numpy_backend.eval_lanes(compiled, lanes),
                ),
            },
        )
        obs.configure(enabled=False)
        npy["patterns_per_call"] = NUMPY_LANES * 64
        rows["numpy_eval_lanes"] = npy

    import tempfile

    with tempfile.TemporaryDirectory(prefix="repro-bench-obs-") as tmp:
        rows["queue_worker_timeseries"] = _measure_timeseries_flush(
            repeats, Path(tmp)
        )

    obs.configure(enabled=was_enabled)
    obs.reset()
    return {
        "benchmark": "obs_overhead",
        "circuit": CIRCUIT,
        "rounds": ROUNDS,
        "repeats": repeats,
        "numpy_available": numpy_available(),
        "rows": rows,
    }


def print_table(payload: dict) -> None:
    print(
        f"\n{'path':22s} {'patterns':>9s} {'pristine':>10s} {'disabled':>10s} "
        f"{'enabled':>10s} {'dis/pri':>8s} {'en/pri':>8s}"
    )
    for name, row in payload["rows"].items():
        if "pristine_s" not in row:
            continue
        print(
            f"{name:22s} {row['patterns_per_call']:9d} "
            f"{row['pristine_s'] * 1e6:8.1f}us {row['disabled_s'] * 1e6:8.1f}us "
            f"{row['enabled_s'] * 1e6:8.1f}us "
            f"{row['disabled_ratio']:8.4f} {row['enabled_ratio']:8.4f}"
        )
    flush = payload["rows"].get("queue_worker_timeseries")
    if flush:
        print(
            f"{'queue_worker_timeseries':22s} telemetry flush "
            f"{flush['flush_s'] * 1e6:8.1f}us per heartbeat "
            f"({flush['heartbeat_interval_s']:.1f}s cadence) -> shard-path "
            f"ratio {flush['timeseries_ratio']:.4f}"
        )
    print(f"(per-call medians; ratios are medians of paired round ratios, "
          f"{payload['repeats']} trials x {payload['rounds']} rounds; "
          f"JSON written to {RESULT_PATH})")


def check_targets(payload: dict) -> None:
    """The obs PR's acceptance gate: disabled instrumentation is free,
    and the heartbeat-cadence telemetry flush is cheap on the shard path."""
    for name, row in payload["rows"].items():
        if "disabled_ratio" in row:
            assert row["disabled_ratio"] <= 1.02, (
                f"{name}: disabled observability costs "
                f"{(row['disabled_ratio'] - 1) * 100:.2f}% (> 2% budget)"
            )
    flush = payload["rows"].get("queue_worker_timeseries")
    if flush is not None:
        assert flush["timeseries_ratio"] <= 1.05, (
            f"heartbeat-cadence telemetry flush costs "
            f"{flush['flush_s'] * 1e3:.2f}ms per "
            f"{flush['heartbeat_interval_s']:.1f}s heartbeat "
            f"({(flush['timeseries_ratio'] - 1) * 100:.2f}% of the shard "
            "path, > 5% budget)"
        )


def run_suite(repeats: int = REPEATS, library=None) -> dict:
    payload = measure(repeats, library)
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_obs_overhead(benchmark, lsi_lib):
    payload = benchmark.pedantic(
        lambda: run_suite(REPEATS, lsi_lib), rounds=1, iterations=1
    )
    print_table(payload)
    check_targets(payload)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="CI mode: fewer repeats, nonzero exit when the 2%% gate fails",
    )
    args = parser.parse_args()
    payload = run_suite(CHECK_REPEATS if args.check else REPEATS,
                        lsi10k_like_library())
    print_table(payload)
    check_targets(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())

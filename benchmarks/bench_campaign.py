"""Campaign runner costs — shard throughput, isolation overhead, journal.

Measures the three costs that size a fault-injection campaign:

* **shard throughput** — vector pairs/sec of :func:`run_shard` per fault
  mode on ``comparator2`` (value modes evaluate zero-delay; timing modes
  pay for two event-driven waveform simulations per pair),
* **isolation overhead** — wall seconds per shard of the subprocess worker
  versus inline execution of the identical plan; the difference is the
  price of crash isolation (interpreter start + import + synthesis, since
  each worker is single-shot),
* **queue overhead** — steady-state wall cost of the shared-directory
  work-queue backend versus the process pool at the same worker count;
  the difference is the price of elasticity (lease files, heartbeats,
  rename-based claims).  Gated at <= 1.25x only on machines with >= 4
  cores — below that the lanes are serialized by the scheduler and the
  ratio measures the CPU, not the protocol — but always recorded,
* **journal append cost** — fsync'd checkpoint appends/sec, the durability
  tax paid once per completed shard.

Results are printed as tables and written to ``BENCH_campaign.json`` next
to the repo root so the cost trajectory is tracked across PRs.

Run standalone (``python benchmarks/bench_campaign.py``) or via
``pytest benchmarks/ --benchmark-only -s``.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path
from tempfile import TemporaryDirectory

from repro.campaign import (
    CampaignSpec,
    CheckpointWriter,
    RunnerConfig,
    ShardSpec,
    derive_seed,
    run_campaign,
    run_shard,
)
from repro.campaign.spec import FAULT_KINDS, normalize_mode

#: Circuit all costs are measured on; small enough that mode cost, not
#: synthesis, dominates each shard.
CIRCUIT = "comparator2"

#: Vector pairs per measured shard.
VECTORS = 64

#: Journal appends measured for the fsync cost.
APPENDS = 64

#: Worker count for the queue-vs-process comparison.
QUEUE_WORKERS = 4

#: Cores below which the queue overhead gate records but does not enforce.
QUEUE_GATE_CORES = 4

#: Steady-state queue backend budget relative to the process pool.
QUEUE_OVERHEAD_LIMIT = 1.25

#: Timing repeats; minimum-of-N filters scheduler/throttling spikes.
REPEATS = 3

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_campaign.json"


def _best_of(repeats, fn):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def measure_shards() -> list[dict]:
    """Vector pairs/sec of run_shard for every fault mode."""
    rows = []
    for kind in FAULT_KINDS:
        shard = ShardSpec(
            index=0,
            circuit=CIRCUIT,
            mode=normalize_mode(kind),
            vectors=VECTORS,
            seed=derive_seed(23, CIRCUIT, kind),
            clock_fraction=0.9,
        )
        run_shard(shard)  # warm the synthesized-design cache
        t, result = _best_of(REPEATS, lambda: run_shard(shard))
        rows.append(
            {
                "mode": shard.mode_key,
                "vectors": VECTORS,
                "seconds": t,
                "vectors_per_sec": VECTORS / t,
                "unmasked_errors": result["pairs_unmasked_errors"],
                "masked_errors": result["pairs_masked_errors"],
            }
        )
    return rows


def measure_isolation() -> dict:
    """Per-shard wall cost of subprocess isolation vs inline execution."""
    spec = CampaignSpec(
        circuits=(CIRCUIT,),
        modes=({"kind": "seu"},),
        shards_per_cell=2,
        vectors_per_shard=16,
        seed=23,
    )
    with TemporaryDirectory(prefix="bench-campaign-") as tmp:
        base = Path(tmp)
        t_inline, _ = _best_of(
            1,
            lambda: run_campaign(
                spec, base / "inline.jsonl", RunnerConfig(workers=0)
            ),
        )
        t_isolated, _ = _best_of(
            1,
            lambda: run_campaign(
                spec, base / "isolated.jsonl", RunnerConfig(workers=1)
            ),
        )
    n = spec.shards_per_cell  # plan size: one circuit, one mode
    return {
        "shards": n,
        "inline_seconds_per_shard": t_inline / n,
        "subprocess_seconds_per_shard": t_isolated / n,
        "isolation_overhead_seconds": (t_isolated - t_inline) / n,
    }


def measure_queue() -> dict:
    """Steady-state queue backend cost vs the process pool, same fleet."""
    spec = CampaignSpec(
        circuits=(CIRCUIT,),
        modes=({"kind": "seu"},),
        shards_per_cell=8,
        vectors_per_shard=16,
        seed=23,
    )
    with TemporaryDirectory(prefix="bench-queue-") as tmp:
        base = Path(tmp)
        t_process, _ = _best_of(
            1,
            lambda: run_campaign(
                spec, base / "process.jsonl",
                RunnerConfig(workers=QUEUE_WORKERS, backend="process"),
            ),
        )
        t_queue, _ = _best_of(
            1,
            lambda: run_campaign(
                spec, base / "queue.jsonl",
                RunnerConfig(
                    workers=QUEUE_WORKERS,
                    backend="queue",
                    queue_dir=str(base / "q"),
                    lease_ttl=5.0,
                ),
            ),
        )
    cores = os.cpu_count() or 1
    return {
        "workers": QUEUE_WORKERS,
        "shards": spec.shards_per_cell,
        "cores": cores,
        "process_seconds": t_process,
        "queue_seconds": t_queue,
        "overhead_ratio": t_queue / t_process,
        "gated": cores >= QUEUE_GATE_CORES,
    }


def measure_journal() -> dict:
    """fsync'd appends/sec of the checkpoint writer."""
    spec = CampaignSpec(
        circuits=(CIRCUIT,), modes=({"kind": "seu"},), shards_per_cell=1
    )
    result = {"shard": 0, "vectors": 0, "pairs_unmasked_errors": 0,
              "pairs_masked_errors": 0, "outputs": {}}

    def append_many() -> None:
        with TemporaryDirectory(prefix="bench-journal-") as tmp:
            writer = CheckpointWriter.create(
                Path(tmp) / "c.jsonl", spec, APPENDS
            )
            for i in range(APPENDS):
                writer.shard_done(i, 1, result)

    t, _ = _best_of(REPEATS, append_many)
    return {"appends": APPENDS, "appends_per_sec": APPENDS / t}


def run_suite() -> dict:
    payload = {
        "benchmark": "campaign",
        "circuit": CIRCUIT,
        "shard_rows": measure_shards(),
        "isolation": measure_isolation(),
        "queue": measure_queue(),
        "journal": measure_journal(),
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def print_table(payload: dict) -> None:
    print(f"\n{'mode':34s} {'vectors':>8s} {'vec/sec':>10s} {'errors':>7s} "
          f"{'escaped':>8s}")
    for row in payload["shard_rows"]:
        print(
            f"{row['mode']:34s} {row['vectors']:8d} "
            f"{row['vectors_per_sec']:10.0f} {row['unmasked_errors']:7d} "
            f"{row['masked_errors']:8d}"
        )
    iso = payload["isolation"]
    print(
        f"isolation: inline {iso['inline_seconds_per_shard']:.3f}s/shard, "
        f"subprocess {iso['subprocess_seconds_per_shard']:.3f}s/shard "
        f"(+{iso['isolation_overhead_seconds']:.3f}s crash-isolation tax)"
    )
    queue = payload["queue"]
    print(
        f"queue: {queue['queue_seconds']:.2f}s vs process "
        f"{queue['process_seconds']:.2f}s at {queue['workers']} workers "
        f"({queue['overhead_ratio']:.2f}x"
        + (")" if queue["gated"]
           else f", record-only: {queue['cores']} cores)")
    )
    journal = payload["journal"]
    print(f"journal: {journal['appends_per_sec']:.0f} fsync'd appends/sec")
    print(f"(JSON written to {RESULT_PATH})")


def check_targets(payload: dict) -> None:
    """Campaign cost gates, rechecked on every run."""
    for row in payload["shard_rows"]:
        assert row["vectors_per_sec"] >= 50.0, (
            f"{row['mode']}: shard throughput collapsed to "
            f"{row['vectors_per_sec']:.0f} vectors/sec"
        )
    # Injection must observe errors somewhere, else the campaign is vacuous.
    assert any(r["unmasked_errors"] > 0 for r in payload["shard_rows"])
    iso = payload["isolation"]
    assert iso["subprocess_seconds_per_shard"] <= 30.0, (
        "subprocess isolation costs "
        f"{iso['subprocess_seconds_per_shard']:.1f}s per shard"
    )
    queue = payload["queue"]
    if queue["gated"]:
        assert queue["overhead_ratio"] <= QUEUE_OVERHEAD_LIMIT, (
            f"queue backend costs {queue['overhead_ratio']:.2f}x the "
            f"process pool at {queue['workers']} workers "
            f"(budget {QUEUE_OVERHEAD_LIMIT}x)"
        )
    assert payload["journal"]["appends_per_sec"] >= 10.0, (
        "checkpoint fsync append rate "
        f"{payload['journal']['appends_per_sec']:.0f}/sec"
    )


def test_campaign_costs(benchmark):
    payload = benchmark.pedantic(run_suite, rounds=1, iterations=1)
    print_table(payload)
    check_targets(payload)


def main() -> int:
    payload = run_suite()
    print_table(payload)
    check_targets(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())

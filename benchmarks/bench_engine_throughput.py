"""Engine throughput — patterns/sec, reference walk vs compiled backends.

Measures zero-delay simulation throughput on the builtin suite three ways:

* ``reference`` — the seed implementation: one dict-based topological walk
  per pattern (kept verbatim below as the honest baseline),
* ``python`` — the compiled engine's pure-Python big-int word backend at its
  preferred batch size (16 Ki patterns per word),
* ``numpy`` — the engine's levelized ``uint64``-lane backend on its *native*
  lane interface (:meth:`NumpyWordBackend.eval_lanes`) at its preferred
  batch size (1 Mi patterns), skipped when NumPy is not importable.  The
  big-int-interface throughput (``eval_words``, which pays int<->lane
  conversions both ways) is recorded alongside as ``numpy_words_pps`` —
  that is the number that justifies keeping "python" the default backend
  for the dict/word API.

Each backend is measured at its own best batch shape because that is how a
Monte-Carlo caller would use it; bit-exactness between the backends is
asserted on a shared batch before any timing is trusted.

Results are printed as a table and written to ``BENCH_engine.json`` next to
the repo root so the performance trajectory is tracked across PRs.  The
compiled pure-Python backend must clear 5x over the reference walk; the
NumPy backend's native path must not be slower than pure Python overall.

Run standalone (``python benchmarks/bench_engine_throughput.py``) or via
``pytest benchmarks/ --benchmark-only -s``.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.engine import (
    compile_circuit,
    numpy_available,
    pack_input_words,
    select_backend,
)
from repro.netlist import lsi10k_like_library
from repro.benchcircuits import circuit_by_name
from repro.sim import pack_patterns, random_patterns

#: Circuits benchmarked; a cross-section of the builtin suite.
CIRCUITS = ("cmb", "x2", "cu", "C432", "comparator6")

#: Patterns per batch for the big-int word backends (their sweet spot).
WORD_PATTERNS = 16384

#: Patterns per batch for the numpy backend's native lane path; large enough
#: to amortize per-ufunc dispatch, the regime the lane backend exists for.
NUMPY_PATTERNS = 1 << 20

#: Patterns for the (much slower) reference walk; throughput extrapolates.
REFERENCE_PATTERNS = 256

#: Timing repeats; minimum-of-N filters scheduler/throttling spikes.
REPEATS = 5

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"


def _reference_simulate(circuit, pattern):
    """The seed per-pattern simulator: dict walk, no compiled IR."""
    values = {}
    for net in circuit.inputs:
        values[net] = bool(pattern[net])
    for name in circuit.topo_order():
        gate = circuit.gates[name]
        values[name] = gate.cell.evaluate(
            {pin: values[f] for pin, f in zip(gate.cell.inputs, gate.fanins)}
        )
    return values


def _best_of(repeats, fn):
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def measure_circuit(name: str, library=None) -> dict:
    """Patterns/sec for one circuit under all three evaluators."""
    circuit = circuit_by_name(name, library)
    compiled = compile_circuit(circuit)

    ref_pats = list(random_patterns(circuit.inputs, REFERENCE_PATTERNS, seed=11))
    ref_time, _ = _best_of(
        3, lambda: [_reference_simulate(circuit, p) for p in ref_pats]
    )
    row = {
        "circuit": name,
        "gates": circuit.num_gates,
        "word_patterns": WORD_PATTERNS,
        "reference_pps": REFERENCE_PATTERNS / ref_time,
    }

    pats = list(random_patterns(circuit.inputs, WORD_PATTERNS, seed=11))
    words, width = pack_patterns(circuit.inputs, pats)
    packed = pack_input_words(compiled, words, width)

    python = select_backend("python")
    t, py_vals = _best_of(REPEATS, lambda: python.eval_words(compiled, packed, width))
    row["python_pps"] = width / t
    row["speedup_python"] = row["python_pps"] / row["reference_pps"]

    if numpy_available():
        import numpy as np

        numpy_backend = select_backend("numpy")
        # Bit-exactness first, on the shared batch, before timing anything.
        np_vals = numpy_backend.eval_words(compiled, packed, width)
        assert np_vals == py_vals, f"{name}: backend results differ"

        t, _ = _best_of(
            REPEATS, lambda: numpy_backend.eval_words(compiled, packed, width)
        )
        row["numpy_words_pps"] = width / t

        rng = np.random.default_rng(11)
        lanes = rng.integers(
            0, 2**64, size=(compiled.n_inputs, NUMPY_PATTERNS // 64), dtype=np.uint64
        )
        t, _ = _best_of(REPEATS, lambda: numpy_backend.eval_lanes(compiled, lanes))
        row["numpy_patterns"] = NUMPY_PATTERNS
        row["numpy_native_pps"] = NUMPY_PATTERNS / t
        row["speedup_numpy"] = row["numpy_native_pps"] / row["reference_pps"]
        row["numpy_vs_python"] = row["numpy_native_pps"] / row["python_pps"]
    return row


def run_suite(library=None) -> dict:
    rows = [measure_circuit(name, library) for name in CIRCUITS]
    payload = {
        "benchmark": "engine_throughput",
        "word_patterns": WORD_PATTERNS,
        "numpy_patterns": NUMPY_PATTERNS,
        "reference_patterns": REFERENCE_PATTERNS,
        "numpy_available": numpy_available(),
        "rows": rows,
    }
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def print_table(payload: dict) -> None:
    print(
        f"\n{'circuit':14s} {'gates':>6s} {'reference':>12s} "
        f"{'python':>12s} {'numpy-lanes':>12s} {'numpy-words':>12s} "
        f"{'py-speedup':>11s} {'np/py':>7s}"
    )
    for row in payload["rows"]:
        native = row.get("numpy_native_pps")
        via_words = row.get("numpy_words_pps")
        print(
            f"{row['circuit']:14s} {row['gates']:6d} "
            f"{row['reference_pps']:12.0f} {row['python_pps']:12.0f} "
            f"{(f'{native:12.0f}' if native else '         n/a')} "
            f"{(f'{via_words:12.0f}' if via_words else '         n/a')} "
            f"{row['speedup_python']:10.1f}x "
            f"{row.get('numpy_vs_python', float('nan')):7.2f}"
        )
    print(f"(patterns/sec; JSON written to {RESULT_PATH})")


def check_targets(payload: dict) -> None:
    """The acceptance gates of the engine PR, rechecked on every run."""
    for row in payload["rows"]:
        assert row["speedup_python"] >= 5.0, (
            f"{row['circuit']}: compiled python backend only "
            f"{row['speedup_python']:.1f}x over the reference walk"
        )
    if payload["numpy_available"]:
        ratios = [row["numpy_vs_python"] for row in payload["rows"]]
        geomean = 1.0
        for r in ratios:
            geomean *= r
        geomean **= 1.0 / len(ratios)
        assert geomean >= 1.0, (
            f"numpy native-lane path slower than pure python overall "
            f"(geomean {geomean:.2f})"
        )


def test_engine_throughput(benchmark, lsi_lib):
    payload = benchmark.pedantic(
        lambda: run_suite(lsi_lib), rounds=1, iterations=1
    )
    print_table(payload)
    check_targets(payload)


def main() -> int:
    payload = run_suite(lsi10k_like_library())
    print_table(payload)
    check_targets(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Ablation A3 — collapse support bound (the paper's 10–15 input nodes).

Sweeps ``max_support`` of the technology-independent collapse.  Tiny bounds
keep the network close to the mapped gates (little don't-care leverage per
node); large bounds produce big complex nodes whose flattened SOPs can cost
area and depth.  The paper's 10–15 range is the sweet spot this sweep
exposes.
"""

import pytest

from repro.benchcircuits import make_benchmark
from repro.core import mask_circuit

_BOUNDS = (4, 8, 12, 15)
_ROWS = []


@pytest.mark.parametrize("max_support", _BOUNDS)
def test_collapse_bound_sweep(benchmark, max_support, lsi_lib):
    circuit = make_benchmark("cu", lsi_lib)
    res = benchmark.pedantic(
        lambda: mask_circuit(circuit, lsi_lib, max_support=max_support),
        rounds=1,
        iterations=1,
    )
    r = res.report
    assert r.sound and r.coverage_percent == 100.0
    _ROWS.append((max_support, res))
    if len(_ROWS) == len(_BOUNDS):
        print(
            "\nAblation A3: collapse support bound on 'cu' (paper: 10-15)\n"
            f"{'K':>3s} {'technet nodes':>14s} {'slack%':>7s} "
            f"{'area%':>7s} {'power%':>7s}"
        )
        for k, rr in _ROWS:
            print(
                f"{k:3d} {rr.masking.technet.num_nodes:14d} "
                f"{rr.report.slack_percent:7.1f} "
                f"{rr.report.area_overhead_percent:7.1f} "
                f"{rr.report.power_overhead_percent:7.1f}"
            )
        # Larger bounds can only shrink (or keep) the technet node count.
        nodes = [rr.masking.technet.num_nodes for _, rr in _ROWS]
        assert nodes == sorted(nodes, reverse=True)

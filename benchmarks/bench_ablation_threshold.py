"""Ablation A1 — speed-path threshold sweep.

The paper fixes ``Delta_y = 0.9 * Delta`` (protect paths within 10% of the
critical delay).  This sweep varies the protected band and reports how the
SPCF size and the masking overheads respond: a wider band means more
patterns to cover and a tighter delay budget for the masking circuit, so
overhead rises and slack falls — the design-space trade-off behind the
paper's 10% choice.
"""

import pytest

from benchmarks.conftest import fmt_count
from repro.benchcircuits import make_benchmark
from repro.core import mask_circuit

_THRESHOLDS = (0.8, 0.85, 0.9, 0.95)
_ROWS = []


@pytest.mark.parametrize("threshold", _THRESHOLDS)
def test_threshold_sweep(benchmark, threshold, lsi_lib):
    circuit = make_benchmark("cu", lsi_lib)
    res = benchmark.pedantic(
        lambda: mask_circuit(circuit, lsi_lib, threshold=threshold),
        rounds=1,
        iterations=1,
    )
    r = res.report
    assert r.sound and r.coverage_percent == 100.0
    _ROWS.append((threshold, r))
    if len(_ROWS) == len(_THRESHOLDS):
        print(
            "\nAblation A1: threshold sweep on 'cu' "
            "(paper uses 0.9)\n"
            f"{'Delta_y/Delta':>13s} {'critPOs':>8s} {'minterms':>10s} "
            f"{'slack%':>7s} {'area%':>7s} {'power%':>7s}"
        )
        for th, r in _ROWS:
            print(
                f"{th:13.2f} {r.critical_outputs:8d} "
                f"{fmt_count(r.critical_minterms):>10s} {r.slack_percent:7.1f} "
                f"{r.area_overhead_percent:7.1f} {r.power_overhead_percent:7.1f}"
            )
        # Lowering the threshold (wider band) can only add critical outputs.
        crit = [r.critical_outputs for _, r in sorted(_ROWS)]
        assert crit == sorted(crit, reverse=True)

"""Sec. 5 headline — 100% masking of injected timing errors.

For a set of circuits: synthesize the masking circuit, age the speed-path
gates past the clock period, drive random two-vector workloads, and count

* raw timing errors (the unprotected circuit samples a wrong value),
* residual errors (the *masked* design samples a wrong value).

The claim reproduced: residual errors are zero — every timing error on a
speed-path is masked — while the masking circuit's own slack absorbs the
injected slowdown.
"""

import pytest

from repro.benchcircuits import make_benchmark
from repro.core import mask_circuit
from repro.engine import compile_circuit
from repro.sim import (
    pack_patterns,
    random_patterns,
    sample_at_clock,
    simulate_words,
    speed_path_gates,
)

NAMES = ("cmb", "x2", "cu", "C432")

_ROWS = []


@pytest.mark.parametrize("name", NAMES)
def test_injected_errors_are_fully_masked(benchmark, name, lsi_lib):
    circuit = make_benchmark(name, lsi_lib)
    res = mask_circuit(circuit, lsi_lib)
    design = res.design
    clock = design.clock_period
    scale = 1.0 + 0.15 * res.report.slack_percent / 100.0 + 0.1
    slow = {g: scale for g in speed_path_gates(circuit) & set(circuit.gates)}
    aged_masked = design.circuit.with_delay_scales(slow)
    aged_raw = circuit.with_delay_scales(slow)

    # Bias the workload towards SPCF patterns so speed-paths actually fire:
    # half random vectors, half sampled from Sigma cubes.
    pats = list(random_patterns(circuit.inputs, 150, seed=7))
    sigma = res.masking.spcf.union
    seeded = []
    for cube in sigma.cubes():
        base = dict.fromkeys(circuit.inputs, False)
        base.update(cube)
        seeded.append(base)
        if len(seeded) >= 150:
            break
    workload = [p for pair in zip(pats, seeded or pats) for p in pair]

    # Reference outputs for the whole workload in one word-parallel engine
    # pass (one bit per pattern) instead of one dict walk per vector.
    words, width = pack_patterns(circuit.inputs, workload)
    ref_words = simulate_words(circuit, words, width)
    aged_raw_cc = compile_circuit(aged_raw)
    aged_masked_cc = compile_circuit(aged_masked)

    def run():
        raw_errors = residual = activations = 0
        for i, (v1, v2) in enumerate(zip(workload, workload[1:])):
            raw = sample_at_clock(aged_raw_cc, v1, v2, clock)
            raw_errors += int(raw.has_error)
            masked = sample_at_clock(aged_masked_cc, v1, v2, clock)
            if sigma.evaluate(v2):
                activations += 1
            for y, net in design.output_map.items():
                ref_bit = bool((ref_words[y] >> (i + 1)) & 1)
                if masked.sampled[net] != ref_bit:
                    residual += 1
        return raw_errors, residual, activations

    raw_errors, residual, activations = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert residual == 0, f"{name}: {residual} errors escaped the mask"
    assert activations > 0, "workload never exercised a speed-path"
    print(
        f"\n{name}: speed-path activations={activations}, raw timing errors="
        f"{raw_errors}, residual errors after masking=0 (100% masked)"
    )

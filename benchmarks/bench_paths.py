"""Static path-sensitization sweep: prefilter reach + tightening gates.

The ``repro.analysis.paths`` PR's acceptance gate.  Every builtin circuit
with at most 12 primary inputs (the exhaustive-plane ceiling) runs through
:func:`repro.analysis.paths.analyze_paths` at the default 90% threshold,
and three facts are asserted per circuit (``check_targets``):

* **bit-identity** — feeding the path-tightened true-arrival bounds into
  :func:`repro.analysis.precert.precertify` and compiling the SPCF against
  those certificates yields the **same ROBDD cube sequences** as the
  plain compile.  Tightening is an optimization hint, never a semantic
  change: a pruned false path contributes nothing to Sigma_y, so removing
  it from the arrival bound cannot move a single bit.
* **discharge monotonicity** — the precert discharge count with tightened
  arrivals is never below the plain count on any circuit, and is
  **strictly higher summed across the sweep** (the ``bypass``
  demonstrator guarantees at least one newly discharged obligation: its
  only speed-path is false and prunable, so the output's true arrival
  drops to the target and the obligation discharges "on-time").
* **prefilter discharge rate recorded** — the fraction of paths settled
  by the ternary/word planes before any BDD work is computed and stored
  per circuit and as a sweep-wide aggregate, so regressions in the
  cheap-first ordering are visible in the JSON history.

Results go to ``BENCH_paths.json`` next to the repo root.  Run standalone
(``python benchmarks/bench_paths.py``), in CI check mode (``--check``),
or via ``pytest benchmarks/ --benchmark-only -s``.
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from pathlib import Path

from repro.analysis.paths import analyze_paths, tightened_arrivals
from repro.analysis.precert import precertify
from repro.benchcircuits import circuit_by_name
from repro.netlist import lsi10k_like_library
from repro.spcf import spcf_shortpath

#: Every builtin circuit whose input count fits the exhaustive word plane.
CIRCUITS = (
    "bypass",
    "comparator2",
    "comparator4",
    "comparator6",
    "full_adder",
    "cla4",
    "alu_slice",
    "ripple_adder4",
    "decoder3",
    "parity8",
    "mux_tree3",
    "priority_encoder8",
    "x2",
    "alu2",
    "apex4",
)

THRESHOLD = 0.9

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_paths.json"


def _canonical(result):
    """Cross-manager comparable form: output -> ROBDD cube sequence."""
    return {
        y: list(fn.cubes()) for y, fn in sorted(result.per_output.items())
    }


def _timed(fn):
    gc.collect()
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


def run_circuit(name: str, library) -> dict:
    circuit = circuit_by_name(name, library)
    analysis, analyze_s = _timed(
        lambda: analyze_paths(circuit, threshold=THRESHOLD)
    )
    stats = analysis.stats
    target = analysis.target
    tighten = tightened_arrivals(analysis)

    plain_certs = precertify(circuit, targets=[target], threshold=THRESHOLD)
    tight_certs = precertify(
        circuit, targets=[target], threshold=THRESHOLD, tighten=tighten
    )
    base = spcf_shortpath(circuit, target=target)
    tight = spcf_shortpath(circuit, target=target, certificates=tight_certs)

    prefilter = stats["prefilter_ternary"] + stats["prefilter_exhaustive"]
    return {
        "inputs": len(circuit.inputs),
        "gates": circuit.num_gates,
        "target": target,
        "paths": stats["paths"],
        "false": stats["false"],
        "true": stats["true"],
        "unresolved": stats["unresolved"],
        "prunable": stats["prunable"],
        "bdd_paths": stats["bdd_paths"],
        "replays": stats["replays"],
        "prefilter_discharged": prefilter,
        "prefilter_rate": round(prefilter / stats["paths"], 4)
        if stats["paths"]
        else 1.0,
        "tightened_outputs": len(tighten),
        "plain_discharged": plain_certs.counts()["discharged"],
        "tight_discharged": tight_certs.counts()["discharged"],
        "plain_discharge_rate": round(plain_certs.discharge_rate(), 4),
        "tight_discharge_rate": round(tight_certs.discharge_rate(), 4),
        "identical": _canonical(base) == _canonical(tight),
        "analyze_s": analyze_s,
    }


def measure(library=None) -> dict:
    library = library or lsi10k_like_library()
    rows = {name: run_circuit(name, library) for name in CIRCUITS}
    total_paths = sum(r["paths"] for r in rows.values())
    total_prefilter = sum(r["prefilter_discharged"] for r in rows.values())
    return {
        "threshold": THRESHOLD,
        "circuits": len(rows),
        "total_paths": total_paths,
        "prefilter_rate": round(total_prefilter / total_paths, 4)
        if total_paths
        else 1.0,
        "plain_discharged": sum(r["plain_discharged"] for r in rows.values()),
        "tight_discharged": sum(r["tight_discharged"] for r in rows.values()),
        "rows": rows,
    }


def print_table(payload: dict) -> None:
    print(
        f"{'circuit':18s} {'in':>4s} {'paths':>6s} {'false':>6s} "
        f"{'true':>5s} {'unres':>6s} {'pre%':>6s} {'tight':>6s} "
        f"{'disch':>11s} {'time':>8s} ident"
    )
    for name, row in payload["rows"].items():
        print(
            f"{name:18s} {row['inputs']:4d} {row['paths']:6d} "
            f"{row['false']:6d} {row['true']:5d} {row['unresolved']:6d} "
            f"{100 * row['prefilter_rate']:5.1f}% {row['tightened_outputs']:6d} "
            f"{row['plain_discharged']:4d} -> {row['tight_discharged']:4d} "
            f"{row['analyze_s'] * 1e3:6.1f}ms {row['identical']}"
        )
    print(
        f"prefilter settled {100 * payload['prefilter_rate']:.1f}% of "
        f"{payload['total_paths']} paths before BDD work; precert "
        f"discharges {payload['plain_discharged']} -> "
        f"{payload['tight_discharged']} with tightened arrivals "
        f"(JSON written to {RESULT_PATH})"
    )


def check_targets(payload: dict) -> None:
    """The acceptance gates: bit-identity + strict discharge improvement."""
    for name, row in payload["rows"].items():
        assert row["identical"], (
            f"{name}: SPCF with tightened-arrival certificates is not "
            f"bit-identical to the plain compile"
        )
        assert row["tight_discharged"] >= row["plain_discharged"], (
            f"{name}: tightening lowered the precert discharge count "
            f"({row['plain_discharged']} -> {row['tight_discharged']})"
        )
    assert payload["tight_discharged"] > payload["plain_discharged"], (
        f"path tightening did not strictly improve the summed precert "
        f"discharge count ({payload['plain_discharged']} -> "
        f"{payload['tight_discharged']})"
    )


def run_suite(library=None) -> dict:
    payload = measure(library)
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_paths_sweep(benchmark, lsi_lib):
    payload = benchmark.pedantic(
        lambda: run_suite(lsi_lib), rounds=1, iterations=1
    )
    print_table(payload)
    check_targets(payload)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="CI mode: nonzero exit when a gate fails",
    )
    parser.parse_args()
    payload = run_suite()
    print_table(payload)
    check_targets(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())

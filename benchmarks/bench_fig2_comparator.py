"""Fig. 2 — the paper's worked 2-bit comparator example.

Regenerates every quantity of the Sec. 4.2 walkthrough: the delay-7 critical
path, the two speed-paths, the exact SPCF ``Sigma = a1' + a0' b1``, the care
sets, and the synthesized error-masking circuit with its mux integration.
"""

from repro.benchcircuits import comparator2
from repro.core import mask_circuit
from repro.netlist import unit_library
from repro.spcf import SpcfContext, spcf_shortpath
from repro.sta import analyze, enumerate_speed_paths


def test_fig2_comparator_walkthrough(benchmark):
    lib = unit_library()

    def run():
        return mask_circuit(comparator2(lib), lib, max_support=8)

    result = benchmark(run)
    circuit = comparator2(lib)

    rep = analyze(circuit)
    assert rep.critical_delay == 7 and rep.target == 6
    paths = enumerate_speed_paths(circuit, report=rep)
    assert {p.start for p in paths} == {"b0", "b1"}

    ctx = SpcfContext(circuit)
    sigma = spcf_shortpath(circuit, context=ctx).per_output["y"]
    mgr = ctx.manager
    assert sigma == (~mgr.var("a1")) | (~mgr.var("a0") & mgr.var("b1"))

    r = result.report
    assert r.sound and r.coverage_percent == 100.0
    print(
        "\nFig. 2 walkthrough: Delta=7, Delta_y=6, |Sigma|=10/16, "
        f"speed-paths={len(paths)}, masking gates="
        f"{result.masking.masking_circuit.num_gates}, "
        f"slack={r.slack_percent:.1f}%, area overhead={r.area_overhead_percent:.1f}%"
    )

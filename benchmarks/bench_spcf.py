"""SPCF threshold-sweep speedup from pre-certification + multi-root compile.

The precert PR's acceptance gate.  A five-point threshold sweep (50%..90%
of the critical delay) is computed two ways on each circuit:

* ``baseline``  — the pre-PR configuration: one fresh *eager* context per
  threshold (the whole-circuit global-function BDD build paid once per
  target), short-path recursion from scratch each time;
* ``optimized`` — :func:`repro.analysis.precert.precertify` once for all
  targets, then one :func:`repro.spcf.multiroot.compute_multi` pass over a
  single shared lazy context consulting the certificates (the precertify
  call is timed *inside* the optimized window — the gate is end-to-end).

A third configuration rides the same sweep since the ``repro.exec`` PR:

* ``parallel`` — the identical precertify + multi-root work, but fanned
  per output across a **persistent 4-worker process pool**
  (:func:`repro.spcf.spcf_parallel_multi`).  The pool is created once,
  outside every timed window, and reused across circuits and repeats —
  the measurement is steady-state fan-out cost, not interpreter startup.

Gates (``check_targets``):

* **correctness** — per target and output, the optimized SPCF is
  **bit-identical** to the baseline's (identical ROBDD cube sequences;
  canonicity makes this exact function equality), and so is the parallel
  sweep — with zero quarantined outputs,
* **speedup** — the median over circuits of baseline/optimized wall clock
  is at least ``2.0``,
* **parallel speedup** — the median over circuits of baseline/parallel
  wall clock at 4 workers is at least ``1.5``: the full proposed pipeline
  (pre-certification + fan-out) against the pre-PR serial sweep, the same
  numerator the serial gate uses.  Applied only when the machine actually
  has 4 cores (``os.cpu_count() >= 4``): fan-out cannot beat serial on
  fewer cores, but the ratio is recorded either way, along with
  ``parallel_vs_optimized`` (fan-out against the serial multi-root pass —
  below 1.0 on circuits whose whole sweep costs a few milliseconds, where
  wire cost dominates; the fan-out exists for the blowup regime the
  per-task timeout/quarantine machinery guards).

Results go to ``BENCH_spcf.json`` next to the repo root.  Run standalone
(``python benchmarks/bench_spcf.py``), in CI check mode (``--check``,
fewer repeats), or via ``pytest benchmarks/ --benchmark-only -s``.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import statistics
import sys
import time
from pathlib import Path

from repro.analysis.precert import PrecertConfig, precertify
from repro.benchcircuits import circuit_by_name
from repro.exec import ProcessPoolExecutor
from repro.netlist import lsi10k_like_library
from repro.spcf import (
    SpcfContext,
    spcf_multiroot,
    spcf_parallel_multi,
    spcf_shortpath,
)
from repro.spcf.multiroot import resolve_sweep_targets

#: The sweep: Delta_y at these fractions of each circuit's critical delay.
THRESHOLDS = (0.5, 0.6, 0.7, 0.8, 0.9)

#: Diverse exact-SPCF-feasible circuits: the paper's worked example and
#: scaled comparators, handmade datapath/control logic, and the synthetic
#: stand-ins for the paper's named benchmarks (up to 45 primary inputs).
CIRCUITS = (
    "comparator6",
    "ripple_adder8",
    "i1",
    "cmb",
    "x2",
    "cu",
    "alu2",
    "alu4",
    "apex4",
    "frg1",
    "C432",
    "too_large",
    "k2",
)

REPEATS = 5
CHECK_REPEATS = 3

SPEEDUP_GATE = 2.0

#: The parallel gate: serial/parallel median at this pool size must reach
#: the ratio below — on machines with that many cores.
PARALLEL_WORKERS = 4
PARALLEL_SPEEDUP_GATE = 1.5

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_spcf.json"


def _baseline_sweep(circuit, targets):
    """One fresh eager context per target (the pre-PR configuration)."""
    results = {}
    for tgt in targets:
        ctx = SpcfContext(circuit, target=tgt, eager=True)
        results[tgt] = spcf_shortpath(circuit, context=ctx)
    return results


#: Refutation replays concrete witnesses through the event simulator for
#: audit evidence; refuted obligations go to the BDD plane regardless, so
#: the speed-oriented configuration turns the replay budget off.
_SPEED_CONFIG = PrecertConfig(refute_budget=0)


def _optimized_sweep(circuit, targets):
    """Precertify once, then one multi-root pass over a shared lazy context."""
    certs = precertify(circuit, targets=targets, config=_SPEED_CONFIG)
    return spcf_multiroot(circuit, targets=targets, certificates=certs), certs


def _parallel_sweep(circuit, targets, pool):
    """The optimized sweep's exact work, fanned per output across ``pool``."""
    certs = precertify(circuit, targets=targets, config=_SPEED_CONFIG)
    return spcf_parallel_multi(
        circuit, targets=targets, certificates=certs, executor=pool
    )


def _canonical(result):
    """Cross-manager comparable form: output -> ROBDD cube sequence."""
    return {
        y: list(fn.cubes()) for y, fn in sorted(result.per_output.items())
    }


def _time(fn, repeats):
    """Best-of-``repeats`` wall clock (GC parked so debt lands nowhere)."""
    best = float("inf")
    gc.collect()
    gc.disable()
    try:
        for _ in range(repeats):
            t0 = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - t0)
    finally:
        gc.enable()
    return best


def run_circuit(name: str, repeats: int, library, pool) -> dict:
    circuit = circuit_by_name(name, library)
    targets = resolve_sweep_targets(
        SpcfContext(circuit), None, THRESHOLDS
    )

    base = _baseline_sweep(circuit, targets)
    opt, certs = _optimized_sweep(circuit, targets)
    identical = all(
        _canonical(base[tgt]) == _canonical(opt[tgt]) for tgt in targets
    )
    # Warm run doubles as the correctness check (and primes the workers'
    # per-circuit context caches before the timed window).
    par = _parallel_sweep(circuit, targets, pool)
    parallel_identical = all(
        _canonical(base[tgt]) == _canonical(par[tgt]) for tgt in targets
    )
    parallel_incomplete = sum(len(r.incomplete) for r in par.values())

    baseline_s = _time(lambda: _baseline_sweep(circuit, targets), repeats)
    optimized_s = _time(lambda: _optimized_sweep(circuit, targets), repeats)
    parallel_s = _time(
        lambda: _parallel_sweep(circuit, targets, pool), repeats
    )
    counts = certs.counts()
    return {
        "inputs": len(circuit.inputs),
        "gates": circuit.num_gates,
        "targets": list(targets),
        "outputs": sum(len(r.per_output) for r in base.values()),
        "identical": identical,
        "obligations": len(certs),
        "discharged": counts["discharged"],
        "refuted": counts["refuted"],
        "required": counts["required"],
        "discharge_rate": round(certs.discharge_rate(), 4),
        "baseline_s": baseline_s,
        "optimized_s": optimized_s,
        "speedup": round(baseline_s / optimized_s, 3),
        "parallel_s": parallel_s,
        "parallel_speedup": round(baseline_s / parallel_s, 3),
        "parallel_vs_optimized": round(optimized_s / parallel_s, 3),
        "parallel_identical": parallel_identical,
        "parallel_incomplete": parallel_incomplete,
    }


def measure(repeats: int = REPEATS, library=None) -> dict:
    library = library or lsi10k_like_library()
    with ProcessPoolExecutor(workers=PARALLEL_WORKERS) as pool:
        rows = {
            name: run_circuit(name, repeats, library, pool)
            for name in CIRCUITS
        }
    speedups = [row["speedup"] for row in rows.values()]
    parallel_speedups = [row["parallel_speedup"] for row in rows.values()]
    return {
        "thresholds": list(THRESHOLDS),
        "repeats": repeats,
        "speedup_gate": SPEEDUP_GATE,
        "median_speedup": round(statistics.median(speedups), 3),
        "parallel_workers": PARALLEL_WORKERS,
        "parallel_speedup_gate": PARALLEL_SPEEDUP_GATE,
        "parallel_gate_applies": (os.cpu_count() or 1) >= PARALLEL_WORKERS,
        "cpu_count": os.cpu_count() or 1,
        "median_parallel_speedup": round(
            statistics.median(parallel_speedups), 3
        ),
        "rows": rows,
    }


def print_table(payload: dict) -> None:
    print(
        f"{'circuit':18s} {'in':>4s} {'gates':>6s} {'oblig':>6s} "
        f"{'disch%':>7s} {'base':>9s} {'opt':>9s} {'speedup':>8s} "
        f"{'par':>9s} {'par-spd':>8s} ident"
    )
    for name, row in payload["rows"].items():
        print(
            f"{name:18s} {row['inputs']:4d} {row['gates']:6d} "
            f"{row['obligations']:6d} {100 * row['discharge_rate']:6.1f}% "
            f"{row['baseline_s'] * 1e3:7.1f}ms {row['optimized_s'] * 1e3:7.1f}ms "
            f"{row['speedup']:7.2f}x "
            f"{row['parallel_s'] * 1e3:7.1f}ms {row['parallel_speedup']:7.2f}x "
            f"{row['identical'] and row['parallel_identical']}"
        )
    print(
        f"median speedup {payload['median_speedup']:.2f}x over "
        f"{len(payload['rows'])} circuits x {len(payload['thresholds'])} "
        f"thresholds (gate >= {payload['speedup_gate']}x; JSON written to "
        f"{RESULT_PATH})"
    )
    gate_note = (
        f"gate >= {payload['parallel_speedup_gate']}x"
        if payload["parallel_gate_applies"]
        else f"gate skipped: {payload['cpu_count']} core(s) < "
        f"{payload['parallel_workers']} workers"
    )
    print(
        f"median parallel speedup {payload['median_parallel_speedup']:.2f}x "
        f"at {payload['parallel_workers']} workers ({gate_note})"
    )


def check_targets(payload: dict) -> None:
    """The acceptance gates: exact, >= 2x serial, >= 1.5x parallel."""
    for name, row in payload["rows"].items():
        assert row["identical"], (
            f"{name}: optimized sweep is not bit-identical to the baseline"
        )
        assert row["parallel_identical"], (
            f"{name}: parallel sweep is not bit-identical to the baseline"
        )
        assert row["parallel_incomplete"] == 0, (
            f"{name}: parallel sweep quarantined "
            f"{row['parallel_incomplete']} output task(s)"
        )
    assert payload["median_speedup"] >= payload["speedup_gate"], (
        f"median speedup {payload['median_speedup']}x below the "
        f"{payload['speedup_gate']}x gate"
    )
    if payload["parallel_gate_applies"]:
        assert (
            payload["median_parallel_speedup"]
            >= payload["parallel_speedup_gate"]
        ), (
            f"median parallel speedup {payload['median_parallel_speedup']}x "
            f"at {payload['parallel_workers']} workers below the "
            f"{payload['parallel_speedup_gate']}x gate"
        )


def run_suite(repeats: int = REPEATS, library=None) -> dict:
    payload = measure(repeats, library)
    RESULT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_spcf_precert_speedup(benchmark, lsi_lib):
    payload = benchmark.pedantic(
        lambda: run_suite(REPEATS, lsi_lib), rounds=1, iterations=1
    )
    print_table(payload)
    check_targets(payload)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--check",
        action="store_true",
        help="CI mode: fewer repeats, nonzero exit when a gate fails",
    )
    args = parser.parse_args()
    payload = run_suite(CHECK_REPEATS if args.check else REPEATS)
    print_table(payload)
    check_targets(payload)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Sec. 2.1 — trace-buffer window expansion via selective capture.

Sweeps the buffer depth and reports the observation-window expansion factor
when capture is gated on the masking circuit's indicator outputs (store a
cycle only when a speed-path was exercised) versus capture-every-cycle.
"""

import pytest

from repro.apps import capture_experiment
from repro.benchcircuits import make_benchmark
from repro.core import mask_circuit

_ROWS = []
_DEPTHS = (8, 16, 32, 64)


@pytest.fixture(scope="module")
def design(lsi_lib):
    circuit = make_benchmark("cu", lsi_lib)
    return mask_circuit(circuit, lsi_lib).design


@pytest.mark.parametrize("depth", _DEPTHS)
def test_window_expansion(benchmark, design, depth):
    report = benchmark.pedantic(
        lambda: capture_experiment(design, buffer_depth=depth, cycles=8192, seed=3),
        rounds=1,
        iterations=1,
    )
    assert report.always_window == depth
    assert report.expansion_factor >= 1.0
    _ROWS.append(report)
    if len(_ROWS) == len(_DEPTHS):
        print(
            "\nTrace-buffer selective capture (indicator-gated) on 'cu':\n"
            f"{'depth':>6s} {'always-window':>14s} {'selective-window':>17s} "
            f"{'expansion':>10s} {'e-rate':>7s}"
        )
        for r in _ROWS:
            print(
                f"{r.buffer_depth:6d} {r.always_window:14d} "
                f"{r.selective_window:17d} {r.expansion_factor:10.1f} "
                f"{r.indicator_rate:7.3f}"
            )

"""Table 1 — SPCF accuracy vs runtime for the three algorithms.

Paper columns: circuit, I/O, area, then for each algorithm the number of
critical patterns and the runtime.  Invariants checked while benchmarking:
node-based ⊇ exact, path-based == short-path (both exact), and the proposed
short-path method is not slower than the path-based extension.
"""

import pytest

from benchmarks.conftest import fmt_count
from repro.benchcircuits import TABLE1_NAMES, make_benchmark
from repro.spcf import (
    SpcfContext,
    spcf_nodebased,
    spcf_pathbased,
    spcf_shortpath,
)

_HEADER_PRINTED = False


def _print_row(name, circuit, node, path, short):
    global _HEADER_PRINTED
    if not _HEADER_PRINTED:
        print(
            "\nTable 1: critical patterns and runtime per SPCF algorithm\n"
            f"{'circuit':18s} {'I/O':>9s} {'area':>7s} "
            f"{'node-based':>12s} {'t(s)':>7s} "
            f"{'path-based':>12s} {'t(s)':>7s} "
            f"{'short-path':>12s} {'t(s)':>7s} {'overapx':>8s}"
        )
        _HEADER_PRINTED = True
    io = f"{len(circuit.inputs)}/{len(circuit.outputs)}"
    over = node.count() / short.count() if short.count() else 1.0
    print(
        f"{name:18s} {io:>9s} {circuit.area():7.0f} "
        f"{fmt_count(node.count()):>12s} {node.runtime_seconds:7.3f} "
        f"{fmt_count(path.count()):>12s} {path.runtime_seconds:7.3f} "
        f"{fmt_count(short.count()):>12s} {short.runtime_seconds:7.3f} "
        f"{over:8.2f}"
    )


@pytest.mark.parametrize("name", TABLE1_NAMES)
def test_table1_row(benchmark, name, lsi_lib):
    circuit = make_benchmark(name, lsi_lib)

    def run_short():
        return spcf_shortpath(circuit, context=SpcfContext(circuit))

    short = benchmark(run_short)
    ctx = SpcfContext(circuit)
    node = spcf_nodebased(circuit, context=SpcfContext(circuit))
    path = spcf_pathbased(circuit, context=SpcfContext(circuit))
    short_counted = spcf_shortpath(circuit, context=ctx)

    assert path.count() == short_counted.count()
    assert node.count() >= short_counted.count()
    _print_row(name, circuit, node, path, short_counted)

"""Future-work extension — aggressive DVS/overclocking with error masking.

The paper's conclusions propose "aggressive dynamic voltage scaling by
masking timing errors".  This bench sweeps the clock period below the
nominal (compensated) period on a masked design and reports raw vs.
residual error rates: the masked design overclocks safely until the period
cuts into paths below the protected 10% band.
"""

from repro.apps import dvs_sweep
from repro.benchcircuits import make_benchmark
from repro.core import mask_circuit


def test_dvs_overclocking(benchmark, lsi_lib):
    circuit = make_benchmark("cmb", lsi_lib)
    res = mask_circuit(circuit, lsi_lib)

    sweep = benchmark.pedantic(
        lambda: dvs_sweep(res.masking, res.design, cycles=120, seed=5),
        rounds=1,
        iterations=1,
    )
    print(
        f"\nDVS sweep on '{circuit.name}' "
        f"(nominal period {sweep.nominal_period}):\n"
        f"{'period':>7s} {'raw-err':>8s} {'masked-ev':>10s} {'residual':>9s}"
    )
    for p in sweep.points:
        print(
            f"{p.period:7d} {p.raw_error_rate:8.3f} "
            f"{p.masked_error_rate:10.3f} {p.residual_error_rate:9.3f}"
        )
    print(
        f"min safe period {sweep.min_safe_period()} -> "
        f"{sweep.speedup_percent:.1f}% overclock with zero escaped errors"
    )
    assert sweep.min_safe_period() < sweep.nominal_period
    assert sweep.speedup_percent > 0


def test_bodybias_recovery(benchmark, lsi_lib):
    """Future-work extension — adaptive body-bias of critical gates."""
    from repro.apps import plan_body_bias
    from repro.sim import aged_copy
    from repro.sta import analyze

    circuit = make_benchmark("cmb", lsi_lib)
    nominal = analyze(circuit, target=0).critical_delay
    aged = aged_copy(circuit, 1.3)

    plan = benchmark.pedantic(
        lambda: plan_body_bias(aged, target=nominal, recovery=1.0),
        rounds=1,
        iterations=1,
    )
    print(
        f"\nBody-bias plan on aged '{circuit.name}': "
        f"delay {plan.delay_before} -> {plan.delay_after} "
        f"(target {plan.target}) by biasing {len(plan.biased_gates)} gates "
        f"= {plan.area_fraction * 100:.1f}% of area"
    )
    assert plan.meets_target
